// Package diskengine is X-Stream's out-of-core streaming engine (paper §3).
//
// Fast Storage is main memory, Slow Storage is the device holding the
// graph. Each streaming partition owns three files — vertices, edges,
// updates. Pre-processing is a single streaming shuffle of the unordered
// input edge list into the partition edge files; there is no sort and no
// index. Each iteration then runs the merged scatter/shuffle phase of
// Figure 6 (stream edges, append updates to a stream buffer, shuffle the
// buffer when full and append the per-partition chunks to the update
// files) followed by the gather phase (stream each partition's update file
// onto its in-memory vertex set).
//
// I/O is asynchronous with a prefetch distance of one on both input and
// output (§3.3): a dedicated goroutine reads ahead into a second input
// buffer, and a dedicated goroutine writes shuffled output buffers while
// the scatter fills the next. Both §3.2 optimizations are implemented: the
// vertex files are bypassed entirely when all vertex state fits in the
// memory budget, and the update files are bypassed when one scatter
// phase's updates fit in a single stream buffer.
//
// When the program implements core.Combiner the scatter's private buffers
// combine same-destination updates and every shuffled buffer is folded
// per partition before writeback, shrinking the update-file I/O that
// dominates out-of-core runs (see Config.NoCombine and the figcombine
// experiment).
//
// When the program additionally implements core.FrontierProgram and
// Config.Selective is set, the engine keeps an active-vertex frontier
// across iterations and skips I/O the frontier proves useless: a partition
// with no active source has its edge file not read at all, a partially
// active partition is read only in the segments whose tiles (indexed
// during the pre-processing edge shuffle) contain an active source, and a
// partition whose update file is empty skips its gather — including the
// vertex-file read/writeback in spill mode. Edge-file waste is the
// out-of-core engine's dominant loss case on frontier algorithms (§5.3);
// Stats.EdgesSkipped / PartitionsSkipped / TilesSkipped and the drop in
// BytesRead quantify the recovery (see the figfrontier experiment).
package diskengine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/pod"
	"repro/internal/storage"
	"repro/internal/streambuf"
)

// Config tunes the out-of-core engine.
type Config struct {
	// Device holds the partition files (vertices + edges) and, unless
	// UpdateDevice is set, the update files too. Required.
	Device storage.Device
	// UpdateDevice, if non-nil, holds the update files so edge reads and
	// update writes proceed on different devices in parallel (§3.3,
	// evaluated in Figure 15 as "independent disks").
	UpdateDevice storage.Device
	// MemoryBudget is the main-memory budget M of §3.4. 0 means 256 MiB.
	MemoryBudget int64
	// IOUnit is S of §3.4, the request size that saturates the device.
	// 0 means 1 MiB (the paper uses 16 MiB on real hardware; scaled-down
	// graphs use scaled-down units).
	IOUnit int
	// Threads is the worker count for in-memory work. 0 = GOMAXPROCS.
	Threads int
	// Partitions forces the partition count (power of two); 0 = auto
	// from the §3.4 inequality.
	Partitions int
	// MaxIterations bounds the loop. 0 means 1<<20.
	MaxIterations int
	// Prefix namespaces this run's files on the device.
	Prefix string
	// KeepFiles leaves partition files on the device after the run.
	KeepFiles bool
	// NoPrefetch disables the second input/output buffers (prefetch
	// distance 0); used by the prefetch ablation benchmark.
	NoPrefetch bool
	// NoUpdateBypass forces updates through the disk files even when
	// they fit in one stream buffer; used by the bypass ablation.
	NoUpdateBypass bool
	// ForceVertexSpill keeps only one partition's vertices in memory
	// even when the whole vertex set would fit; exercised by tests and
	// the scaling benchmarks.
	ForceVertexSpill bool
	// Partitioner chooses how vertices map to streaming partitions. nil
	// means core.RangePartitioner (the paper's fixed contiguous split).
	// Locality-aware partitioners relabel vertices during pre-processing;
	// the engine still returns vertex states in original input order.
	// Note the partitioner's own working state is O(V) in memory, the
	// same order as one iteration's vertex windows.
	Partitioner core.Partitioner
	// NoCombine disables update combining even when the program
	// implements core.Combiner; used by ablation benchmarks and the
	// combiner-equivalence tests.
	NoCombine bool
	// Selective enables frontier-aware selective streaming for programs
	// implementing core.FrontierProgram: edge files of partitions with no
	// active source are not read, partially active partitions are read
	// only in their active tile segments, and update-empty partitions
	// skip gather. Results are identical with Selective on or off by the
	// FrontierProgram contract; ignored for programs without it (and for
	// PhasedPrograms, whose EndIteration can activate vertices without an
	// update).
	Selective bool
	// TileEdges is the tile granularity (edge records) of the selective
	// read index. 0 means 4096.
	TileEdges int
	// CompressTiles stores the partition edge files as encoded tiles
	// (internal/tilecodec: delta-varint sources exploiting the
	// relabeling's locality, varint targets, raw fallback when
	// compression doesn't pay) instead of raw records. Decoding
	// reproduces the exact record stream, so results are bit-identical to
	// the raw layout while physical edge-file reads shrink:
	// Stats.BytesRead then reports physical traffic, BytesReadLogical the
	// decoded volume, and TilesCompressed/CompressedRatio the layout (see
	// the figcompress experiment). Composes with Selective — the tile
	// index doubles as the skip index.
	CompressTiles bool
	// Context cancels the run: it is checked between iterations, between
	// partition files and between streamed chunks, so server jobs honor
	// cancelation and deadlines promptly. nil means context.Background(),
	// keeping batch callers unchanged.
	Context context.Context
	// NoVerify disables read-path checksum verification of on-disk
	// artifacts (edge tiles, update streams, spilled vertex windows).
	// Verification is on by default: every byte the iteration loop reads
	// back is covered by a CRC32C recorded when it was written, and a
	// mismatch surfaces as storage.ErrCorrupted — never a wrong result.
	// The figchecksum experiment uses this ablation to measure overhead.
	NoVerify bool
	// Checkpoint persists a checksummed snapshot (vertex state, frontier,
	// iteration number) on the device after every completed iteration, so
	// a faulted or killed run restarted with the same Prefix resumes from
	// the last completed iteration instead of from scratch. Snapshots
	// double-buffer across two files, are removed when the run completes,
	// and are ignored (never trusted) when their checksum or identity does
	// not match.
	Checkpoint bool
	// Tracer receives run → iteration → phase → partition spans. nil
	// (the default) disables tracing; a Tracer never changes any work
	// metric, only observes timing (the figobs experiment gates this).
	Tracer core.Tracer
	// Exchange, if non-nil, replaces the update-file writeback with a
	// frame-level update exchange (core.NewExchangeTransport over the
	// returned core.Exchange): scatter's update batches are framed and
	// sent per destination partition instead of written to update files.
	// Called once per run with the partition count. Results are identical
	// to the builtin transport for deterministic programs; used by the
	// loopback worker transport in internal/transport and the transport
	// equivalence matrix.
	Exchange func(k int) core.Exchange
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.IOUnit <= 0 {
		c.IOUnit = 1 << 20
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 1 << 20
	}
	if c.UpdateDevice == nil {
		c.UpdateDevice = c.Device
	}
	if c.TileEdges <= 0 {
		c.TileEdges = 4096
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	return c
}

// edgeRecSize is the on-disk size of one edge record.
var edgeRecSize = int64(pod.Size[core.Edge]())

// Result carries final vertex states and execution statistics.
type Result[V any] struct {
	Vertices []V
	Stats    core.Stats
}

// Run executes prog on g with the out-of-core engine.
func Run[V, M any](g core.EdgeSource, prog core.Program[V, M], cfg Config) (*Result[V], error) {
	cfg = cfg.withDefaults()
	if cfg.Device == nil {
		return nil, fmt.Errorf("diskengine: Config.Device is required")
	}
	if err := pod.Check[V](); err != nil {
		return nil, fmt.Errorf("diskengine: vertex state: %w", err)
	}
	if err := pod.Check[M](); err != nil {
		return nil, fmt.Errorf("diskengine: update value: %w", err)
	}

	start := time.Now()
	e := &engine[V, M]{cfg: cfg, prog: prog, nv: g.NumVertices(), ne: g.NumEdges()}
	if cb, ok := any(prog).(core.Combiner[M]); ok && !cfg.NoCombine {
		e.combine = cb.Combine
	}
	// Selective scheduling requires the FrontierProgram contract; phased
	// programs are excluded because EndIteration may activate vertices
	// through the VertexView without any update the frontier could see.
	if cfg.Selective {
		if fp, ok := any(prog).(core.FrontierProgram[V]); ok {
			if _, phased := any(prog).(core.PhasedProgram[V, M]); !phased {
				e.fp = fp
				e.cur = core.NewFrontier(e.nv)
				e.nxt = core.NewFrontier(e.nv)
			}
		}
	}
	if err := e.plan(); err != nil {
		return nil, err
	}
	devBefore := cfg.Device.Stats()
	updBefore := cfg.UpdateDevice.Stats()

	// Partitioning policy: plan the assignment (part of pre-processing —
	// a locality-aware partitioner pays its streaming passes here),
	// rewrite the edge stream through the relabeling, and let the program
	// translate any ID-valued parameters.
	t0 := time.Now()
	pr := cfg.Partitioner
	if pr == nil {
		pr = core.RangePartitioner{}
	}
	asg, err := pr.Assign(g, e.k)
	if err != nil {
		return nil, fmt.Errorf("diskengine: partitioner %s: %w", pr.Name(), err)
	}
	if err := asg.Validate(e.nv); err != nil {
		return nil, fmt.Errorf("diskengine: partitioner %s: %w", pr.Name(), err)
	}
	e.asg = asg
	e.stats.Partitioner = pr.Name()
	// Vertex replication needs the Combiner to merge mirror accumulators;
	// without one the assignment's mirror set is ignored (the fallback).
	if e.combine != nil && asg.Mirrors.Len() > 0 {
		e.rep = asg.Mirrors
		e.stats.MirroredVertices = asg.Mirrors.Len()
		e.mbPool.New = func() any { return core.NewMirrorBuffer(e.rep, e.combine) }
	}
	if vm, ok := any(prog).(core.VertexMapper); ok {
		vm.MapVertices(e.nv, asg.NewID, asg.OldID)
	}
	if !asg.Identity() {
		g = graphio.Relabeled(g, asg.Relabel)
	}

	if err := e.setup(g); err != nil {
		e.closeTransport()
		e.cleanup()
		return nil, err
	}
	e.stats.PreprocessTime = time.Since(t0)
	if tr := cfg.Tracer; tr != nil {
		tr.Span(0, "preprocess", t0, e.stats.PreprocessTime, nil)
	}

	// Resume from the newest valid checkpoint of a previous attempt with
	// this prefix: iterations [0, startIter) were restored, not executed.
	// Invalid or corrupt snapshots are ignored, never trusted.
	startIter := 0
	if cfg.Checkpoint {
		startIter = e.tryResume()
		e.stats.ResumedIterations = startIter
	}

	if err := e.loop(startIter); err != nil {
		// Checkpoints outlive a failed run on purpose — they are what the
		// retry resumes from.
		e.closeTransport()
		e.cleanup()
		return nil, err
	}

	verts, err := e.materializeVertices()
	if err != nil {
		e.closeTransport()
		e.cleanup()
		return nil, err
	}
	tc := e.tp.Counters()
	e.stats.TransportBatches = tc.Batches
	e.stats.TransportBytes = tc.Bytes
	e.stats.TransportCross = tc.Cross
	e.closeTransport()
	e.removeCheckpoints()
	e.cleanup()

	devAfter := cfg.Device.Stats()
	updAfter := cfg.UpdateDevice.Stats()
	e.stats.BytesRead = devAfter.BytesRead - devBefore.BytesRead
	e.stats.BytesWritten = devAfter.BytesWritten - devBefore.BytesWritten
	e.stats.IORetries = devAfter.Retries - devBefore.Retries
	if cfg.UpdateDevice != cfg.Device {
		e.stats.BytesRead += updAfter.BytesRead - updBefore.BytesRead
		e.stats.BytesWritten += updAfter.BytesWritten - updBefore.BytesWritten
		e.stats.IORetries += updAfter.Retries - updBefore.Retries
	}
	// Logical read volume: everything counted physically, with the edge
	// streams' physical bytes swapped for the record bytes they decoded to.
	e.stats.BytesReadLogical = e.stats.BytesRead - e.physEdge + e.logicalEdge
	var physTiles, logicalTiles int64
	for _, t := range []*diskTiles{e.tilesFwd, e.tilesBwd} {
		if t != nil && t.compressed {
			e.stats.TilesCompressed += t.tilesCompressed
			physTiles += t.physBytes
			logicalTiles += t.logicalBytes
		}
	}
	if logicalTiles > 0 {
		e.stats.CompressedRatio = float64(physTiles) / float64(logicalTiles)
	}
	e.stats.TotalTime = time.Since(start)
	if tr := cfg.Tracer; tr != nil {
		tr.Span(0, "run", start, e.stats.TotalTime, map[string]int64{
			"iterations": int64(e.stats.Iterations),
			"partitions": int64(e.stats.Partitions),
		})
	}
	return &Result[V]{Vertices: verts, Stats: e.stats}, nil
}

type engine[V, M any] struct {
	cfg  Config
	prog core.Program[V, M]
	nv   int64
	ne   int64

	k        int
	part     core.Split
	asg      *core.Assignment
	shufPlan streambuf.Plan
	// combine is the program's update semigroup, nil when the program has
	// none (or Config.NoCombine disabled it); folder is the reusable
	// pre-writeback fold over it (nil when partitions are too wide); rep
	// is the assignment's mirror set, nil unless replication is active (a
	// planned set with no Combiner falls back to nil).
	combine func(a, b M) M
	folder  *streambuf.Folder[core.Update[M]]
	rep     *core.Replication
	// mbPool recycles mirror accumulators across scatter ranges: a
	// flushed buffer is clean, and with the default hub cap scaling as
	// n/64 a fresh allocation per range would dwarf the work saved.
	mbPool sync.Pool
	// Selective scheduling state (nil fp = dense streaming): cur is the
	// frontier scattered this iteration, nxt collects gather receivers for
	// the next, active caches cur's per-partition counts for one scatter;
	// tilesFwd/tilesBwd index the edge files' tile source summaries.
	fp       core.FrontierProgram[V]
	cur, nxt *core.Frontier
	active   []int64
	tilesFwd *diskTiles
	tilesBwd *diskTiles
	// Edge-read volume split for BytesReadLogical: physical bytes the
	// edge streams read vs the decoded record bytes they delivered —
	// equal unless CompressTiles shrank the files.
	physEdge    int64
	logicalEdge int64
	// bufRecs is the record capacity of one stream buffer (S·K bytes).
	bufEdgeRecs int
	bufUpdRecs  int

	// Vertex state: either fully in memory (allVerts != nil) or spilled
	// to per-partition vertex files with a reusable window buffer.
	allVerts  []V
	vertsBuf  []V
	vertFiles []*partFile

	edgeFiles []*partFile // forward edge lists per partition
	bwdFiles  []*partFile // transposed edge lists, built lazily
	updFiles  []*partFile

	// gather sub-shuffle scratch (layered in-memory engine, §4.3)
	subA, subB *streambuf.Buffer[core.Update[M]]

	// tp is the update transport between scatter and gather: the file
	// writeback pipeline by default, an exchange adapter when
	// Config.Exchange is set. Created in setup once the update files exist.
	tp core.UpdateTransport[M]

	stats core.Stats
}

// plan picks the partition count from the §3.4 inequality, sizes the stream
// buffers and decides whether vertices spill.
func (e *engine[V, M]) plan() error {
	vsize := pod.Size[V]()
	usize := pod.Size[core.Update[M]]()
	s := int64(e.cfg.IOUnit)
	m := e.cfg.MemoryBudget
	vertexBytes := e.nv * int64(vsize)

	k := e.cfg.Partitions
	if k == 0 {
		found := false
		for cand := 1; cand <= 1<<20; cand <<= 1 {
			if vertexBytes/int64(cand)+5*s*int64(cand) <= m {
				k, found = cand, true
				break
			}
			if 5*s*int64(cand) > m {
				break
			}
		}
		if !found {
			return fmt.Errorf("diskengine: no partition count satisfies N/K + 5·S·K ≤ M with N=%d S=%d M=%d (need ≥ %d bytes)",
				vertexBytes, s, m, minMemory(vertexBytes, s))
		}
	}
	if k&(k-1) != 0 {
		return fmt.Errorf("diskengine: partition count %d is not a power of two", k)
	}
	e.k = k
	e.part = core.NewSplit(e.nv, k)
	if e.combine != nil {
		e.folder = core.NewUpdateFolder(e.part, e.cfg.Threads, e.combine)
	}

	fanout := k // disk engine: single-stage shuffle (K is small, §3.4)
	if fanout < 2 {
		fanout = 2
	}
	plan, err := streambuf.NewPlan(k, fanout)
	if err != nil {
		return err
	}
	e.shufPlan = plan

	bufBytes := s * int64(k)
	e.bufEdgeRecs = int(bufBytes / edgeRecSize)
	e.bufUpdRecs = int(bufBytes / int64(usize))
	if e.bufEdgeRecs < 1 || e.bufUpdRecs < 1 {
		return fmt.Errorf("diskengine: I/O unit %d too small for record sizes", e.cfg.IOUnit)
	}

	spill := e.cfg.ForceVertexSpill || vertexBytes+5*bufBytes > m
	if !spill {
		e.allVerts = make([]V, e.nv)
	} else {
		e.vertsBuf = make([]V, e.part.PerPartition())
	}

	e.stats.Algorithm = e.prog.Name()
	e.stats.Engine = "disk:" + e.cfg.Device.Name()
	e.stats.Partitions = k
	e.stats.Threads = e.cfg.Threads
	return nil
}

func minMemory(n, s int64) int64 {
	// 2*sqrt(5NS), §3.4.
	v := float64(n) * float64(5*s)
	r := int64(2 * sqrt(v))
	return r
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 64; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// setup creates partition files, initializes vertex state and shuffles the
// input edge list into partition edge files (the engine's entire
// pre-processing: one streaming pass, no sort).
func (e *engine[V, M]) setup(g core.EdgeSource) error {
	e.edgeFiles = make([]*partFile, e.k)
	e.updFiles = make([]*partFile, e.k)
	for p := 0; p < e.k; p++ {
		var err error
		if e.edgeFiles[p], err = createPartFile(e.cfg.Device, fmt.Sprintf("%sp%04d.edges", e.cfg.Prefix, p)); err != nil {
			return err
		}
		if e.updFiles[p], err = createPartFile(e.cfg.UpdateDevice, fmt.Sprintf("%sp%04d.updates", e.cfg.Prefix, p)); err != nil {
			return err
		}
	}

	// The update transport: scatter sends into it, gather drains from it.
	key := func(u core.Update[M]) uint32 { return e.part.Of(u.Dst) }
	if e.cfg.Exchange != nil {
		e.tp = core.NewExchangeTransport(e.cfg.Exchange(e.k), e.k, e.bufUpdRecs, e.shufPlan, e.cfg.Threads, key, e.folder)
	} else {
		e.tp = newFileTransport(fileTransportConfig[M]{
			files:      e.updFiles,
			plan:       e.shufPlan,
			key:        key,
			threads:    e.cfg.Threads,
			bufRecs:    e.bufUpdRecs,
			fold:       e.updateFold(),
			bypass:     !e.cfg.NoUpdateBypass,
			prefetch:   !e.cfg.NoPrefetch,
			verify:     !e.cfg.NoVerify,
			onVerified: func(n int64) { e.stats.BytesChecksummed += n },
		})
	}

	// Vertex state. With selective scheduling, Init doubles as the census
	// seeding iteration 0's frontier.
	if e.allVerts == nil {
		e.vertFiles = make([]*partFile, e.k)
		for p := 0; p < e.k; p++ {
			var err error
			if e.vertFiles[p], err = createPartFile(e.cfg.Device, fmt.Sprintf("%sp%04d.verts", e.cfg.Prefix, p)); err != nil {
				return err
			}
		}
	}
	if err := e.initVertexState(); err != nil {
		return err
	}

	// Partition the edge list (in-memory shuffle reused, §3.2), indexing
	// tile source summaries along the way when selective scheduling is on.
	// The compressed layout needs the index unconditionally — it is the
	// only record of where each tile's bytes live.
	if e.fp != nil || e.cfg.CompressTiles {
		e.tilesFwd = newDiskTilesFor(e.k, e.cfg.TileEdges, e.cfg.CompressTiles)
	}
	return e.partitionEdges(g, e.edgeFiles, false, e.tilesFwd)
}

// initVertexState (re)establishes the initial vertex state — in-memory or
// spilled to the vertex files — and, with selective scheduling, re-seeds
// iteration 0's frontier. setup calls it once; a failed checkpoint resume
// calls it again to guarantee no half-restored state survives.
func (e *engine[V, M]) initVertexState() error {
	if e.fp != nil {
		e.cur.Clear()
	}
	if e.allVerts != nil {
		var wg sync.WaitGroup
		workers := e.cfg.Threads
		n := len(e.allVerts)
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					e.prog.Init(core.VertexID(i), &e.allVerts[i])
					if e.fp != nil && e.fp.InitiallyActive(core.VertexID(i), &e.allVerts[i]) {
						e.cur.Mark(core.VertexID(i))
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		return nil
	}
	for p := 0; p < e.k; p++ {
		lo, hi := e.part.Range(p, e.nv)
		buf := e.vertsBuf[:hi-lo]
		for i := range buf {
			id := core.VertexID(lo + int64(i))
			e.prog.Init(id, &buf[i])
			if e.fp != nil && e.fp.InitiallyActive(id, &buf[i]) {
				e.cur.Mark(id)
			}
		}
		if err := e.vertFiles[p].writeAllAt(pod.AsBytes(buf)); err != nil {
			return err
		}
	}
	return nil
}

// partitionEdges streams src through the shuffle pipeline into files,
// optionally transposing each edge first. A non-nil tiles index observes
// every run written, building the selective-read tile summaries during
// the shuffle itself.
func (e *engine[V, M]) partitionEdges(src core.EdgeSource, files []*partFile, transpose bool, tiles *diskTiles) error {
	return partitionEdgesInto(src, files, transpose, tiles, e.bufEdgeRecs, e.shufPlan, e.part, e.cfg.Threads)
}

// partitionEdgesInto is the engine-independent pre-processing shuffle: it
// streams src into the partition edge files, shared by solo runs and by
// Prepare's cached dataset handles.
func partitionEdgesInto(src core.EdgeSource, files []*partFile, transpose bool, tiles *diskTiles, bufEdgeRecs int, plan streambuf.Plan, part core.Split, threads int) error {
	w := newBucketWriter(bufEdgeRecs, files, plan, func(ed core.Edge) uint32 {
		return part.Of(ed.Src)
	}, threads, nil)
	var comp *tileCompressor
	switch {
	case tiles != nil && tiles.compressed:
		comp = newTileCompressor(files, tiles)
		w.sink = comp.append
	case tiles != nil:
		w.observe = tiles.observe
		defer tiles.finish()
	}
	err := src.Edges(func(batch []core.Edge) error {
		if transpose {
			for i := range batch {
				batch[i].Src, batch[i].Dst = batch[i].Dst, batch[i].Src
			}
		}
		for len(batch) > 0 {
			room := w.Room()
			if room == 0 {
				if err := w.Flush(); err != nil {
					return err
				}
				continue
			}
			take := len(batch)
			if take > room {
				take = room
			}
			if !w.Buf().Append(batch[:take]) {
				return fmt.Errorf("diskengine: edge buffer overflow")
			}
			batch = batch[take:]
		}
		return nil
	})
	if err != nil {
		w.Finish()
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}
	if comp != nil {
		return comp.finish()
	}
	return nil
}

// loop runs the synchronous scatter-shuffle-gather iterations (Figure 6),
// starting at startIter (non-zero after a checkpoint resume).
func (e *engine[V, M]) loop(startIter int) error {
	directed, isDirected := any(e.prog).(core.DirectedProgram)
	phased, isPhased := any(e.prog).(core.PhasedProgram[V, M])
	usize := pod.Size[core.Update[M]]()
	tr := e.cfg.Tracer

	// The run-level device accounting is a single end-of-run delta (see
	// Run); for the per-iteration profile the loop samples the device
	// counters at every iteration boundary and accrues the deltas into
	// stats so PushIter can slice them. Run's final assignments overwrite
	// these fields with the full-run totals, which additionally cover the
	// out-of-loop I/O (pre-processing shuffle, vertex materialization) no
	// iteration owns.
	lastRead, lastWritten, lastRetries := e.devCounters()
	lastPhys, lastLogical := e.physEdge, e.logicalEdge

	for iter := startIter; iter < e.cfg.MaxIterations; iter++ {
		if err := e.cfg.Context.Err(); err != nil {
			return err
		}
		iterStart := time.Now()
		iterMark := e.stats.MarkIter()
		if s, ok := any(e.prog).(core.IterationStarter); ok {
			s.StartIteration(iter)
		}

		edgeFiles, tiles := e.edgeFiles, e.tilesFwd
		if isDirected && directed.Direction(iter) == core.Backward {
			if e.bwdFiles == nil {
				if err := e.buildBackwardFiles(); err != nil {
					return err
				}
			}
			edgeFiles, tiles = e.bwdFiles, e.tilesBwd
		}

		t0 := time.Now()
		if e.fp != nil {
			e.active = e.cur.CountByPartition(e.part)
		}
		sp, err := e.scatterPhase(edgeFiles, tiles)
		if err != nil {
			return err
		}
		sent, streamed := sp.sent, sp.streamed
		appended := sent - sp.scatterCombined
		scatterDur := time.Since(t0)
		e.stats.ScatterTime += scatterDur
		e.stats.EdgesStreamed += streamed
		e.stats.UpdatesSent += sent
		e.stats.WastedEdges += streamed - sent
		e.stats.EdgesSkipped += sp.skippedEdges
		e.stats.PartitionsSkipped += sp.skippedParts
		e.stats.TilesSkipped += sp.skippedTiles
		e.stats.RandomRefs += streamed
		e.stats.SequentialRefs += streamed
		e.stats.BytesStreamed += streamed*edgeRecSize + (appended+sp.written)*int64(usize)
		e.stats.UpdatesCombined += sp.scatterCombined + sp.foldCombined
		e.stats.MirrorSyncUpdates += sp.synced
		e.stats.UpdateBytes += sp.written * int64(usize)
		e.physEdge += sp.physEdge
		e.logicalEdge += sp.logicalEdge

		t1 := time.Now()
		if err := e.gatherPhase(); err != nil {
			return err
		}
		gatherDur := time.Since(t1)
		e.stats.GatherTime += gatherDur
		e.stats.RandomRefs += sp.written
		e.stats.SequentialRefs += sp.written
		if err := e.tp.EndIteration(); err != nil {
			return err
		}
		if e.fp != nil {
			e.cur, e.nxt = e.nxt, e.cur
			e.nxt.Clear()
		}

		// Attribute this iteration's device I/O (a checkpoint write lands
		// in the following iteration's delta — the final totals are exact
		// either way) and record the per-iteration profile entry.
		read, written, retries := e.devCounters()
		e.stats.BytesRead += read - lastRead
		e.stats.BytesWritten += written - lastWritten
		e.stats.IORetries += retries - lastRetries
		e.stats.BytesReadLogical += (read - lastRead) - (e.physEdge - lastPhys) + (e.logicalEdge - lastLogical)
		lastRead, lastWritten, lastRetries = read, written, retries
		lastPhys, lastLogical = e.physEdge, e.logicalEdge

		e.stats.Iterations = iter + 1
		e.stats.PushIter(iter, iterMark, time.Since(iterStart))
		if tr != nil {
			it := int64(iter)
			tr.Span(0, "scatter", t0, scatterDur, map[string]int64{"iter": it, "edges": streamed, "updates": sent})
			tr.Span(0, "gather", t1, gatherDur, map[string]int64{"iter": it, "updates": sp.written})
			tr.Span(0, "iteration", iterStart, time.Since(iterStart), map[string]int64{"iter": it})
		}
		if isPhased {
			if phased.EndIteration(iter, sent, e.vertexView()) {
				return nil
			}
		} else if sent == 0 {
			return nil
		}
		// Snapshot only when the run continues: EndIteration has already
		// folded any phase state into the vertices, so the snapshot is
		// exactly what iteration iter+1 starts from. A terminating run
		// needs no snapshot — its checkpoints are removed on success.
		if e.cfg.Checkpoint {
			cpStart := time.Now()
			if err := e.writeCheckpoint(iter); err != nil {
				return err
			}
			if tr != nil {
				tr.Span(0, "checkpoint", cpStart, time.Since(cpStart), map[string]int64{"iter": int64(iter)})
			}
		}
	}
	return nil
}

// devCounters samples the cumulative read/write/retry counters of the
// run's device (and distinct update device), so the iteration loop can
// attribute per-iteration I/O deltas.
func (e *engine[V, M]) devCounters() (read, written, retries int64) {
	ds := e.cfg.Device.Stats()
	read, written, retries = ds.BytesRead, ds.BytesWritten, ds.Retries
	if e.cfg.UpdateDevice != e.cfg.Device {
		us := e.cfg.UpdateDevice.Stats()
		read += us.BytesRead
		written += us.BytesWritten
		retries += us.Retries
	}
	return read, written, retries
}

// buildBackwardFiles materializes the transposed partitioned edge list with
// one streaming pass over the forward partition files.
func (e *engine[V, M]) buildBackwardFiles() error {
	e.bwdFiles = make([]*partFile, e.k)
	for p := 0; p < e.k; p++ {
		var err error
		if e.bwdFiles[p], err = createPartFile(e.cfg.Device, fmt.Sprintf("%sp%04d.redges", e.cfg.Prefix, p)); err != nil {
			return err
		}
	}
	src := &partFilesSource{files: e.edgeFiles, tiles: e.tilesFwd, nv: e.nv, chunkRecs: e.bufEdgeRecs, prefetch: !e.cfg.NoPrefetch, verify: !e.cfg.NoVerify}
	if e.fp != nil || e.cfg.CompressTiles {
		e.tilesBwd = newDiskTilesFor(e.k, e.cfg.TileEdges, e.cfg.CompressTiles)
	}
	err := e.partitionEdges(src, e.bwdFiles, true, e.tilesBwd)
	e.physEdge += src.phys
	e.logicalEdge += src.logical
	e.stats.BytesChecksummed += src.checked
	return err
}

// partFilesSource re-streams already-partitioned edge files as one source,
// decoding through the tile index when the layout is compressed.
type partFilesSource struct {
	files     []*partFile
	tiles     *diskTiles // nil or raw for raw files; decode index otherwise
	nv        int64
	chunkRecs int
	prefetch  bool
	verify    bool
	// phys and logical accumulate the byte volume of every Edges pass,
	// for the caller's BytesReadLogical accounting; checked the volume
	// checksum-verified along the way.
	phys, logical, checked int64
}

func (s *partFilesSource) NumVertices() int64 { return s.nv }

func (s *partFilesSource) NumEdges() int64 {
	var n int64
	for p, f := range s.files {
		n += edgeFileRecs(f, s.tiles, p)
	}
	return n
}

func (s *partFilesSource) Edges(fn func([]core.Edge) error) error {
	for p, f := range s.files {
		segs, _, _ := planSegments(s.tiles, p, nil, edgeFileRecs(f, s.tiles, p))
		phys, logical, checked, err := streamSegments(nil, f, p, s.tiles, s.verify, segs, s.chunkRecs, s.prefetch, fn)
		s.phys += phys
		s.logical += logical
		s.checked += checked
		if err != nil {
			return err
		}
	}
	return nil
}

// scatterResult aggregates one scatter phase's accounting.
type scatterResult[M any] struct {
	sent            int64 // updates produced by Scatter (pre-combining)
	streamed        int64 // edge records streamed
	scatterCombined int64 // updates merged in thread-private combining/mirror buffers
	foldCombined    int64 // updates merged by the pre-writeback fold
	written         int64 // update records written to files (or kept for bypass gather)
	synced          int64 // master-mirror sync updates flushed (replication)
	// selective-scheduling elisions — skipped edges are bytes never read
	skippedEdges int64
	skippedParts int64
	skippedTiles int64
	// edge-stream volume: physical bytes read vs decoded record bytes
	physEdge    int64
	logicalEdge int64
}

// updateFold returns the bucket fold the bucketWriter applies to each
// shuffled update buffer before writeback — the out-of-core engine's
// second combining stage, which shrinks the dominant update-file I/O
// (§3.2). nil when the program has no Combiner or partitions are too
// wide. The folder is built once per run (plan) so its slot tables are
// reused across every flush.
func (e *engine[V, M]) updateFold() func(*streambuf.Buffer[core.Update[M]]) int64 {
	if e.folder == nil {
		return nil
	}
	return e.folder.Fold
}

// scatterPhase runs the merged scatter/shuffle over every partition,
// sending updates through the run's UpdateTransport and sealing it at the
// end; the transport's IterFlow carries the fold/writeback accounting into
// the result. With selective scheduling, a partition with no active source
// is skipped without reading its edge file (or, in spill mode, its vertex
// file); a partially active partition is read only in the record segments
// whose tiles intersect the frontier.
func (e *engine[V, M]) scatterPhase(edgeFiles []*partFile, tiles *diskTiles) (scatterResult[M], error) {
	var res scatterResult[M]
	tr := e.cfg.Tracer

	for s := 0; s < e.k; s++ {
		if err := e.cfg.Context.Err(); err != nil { // between partition files
			return res, err
		}
		var pStart time.Time
		if tr != nil {
			pStart = time.Now()
		}
		pStreamedBefore := res.streamed
		fileRecs := edgeFileRecs(edgeFiles[s], tiles, s)
		vlo, vhi := e.part.Range(s, e.nv)
		if e.fp != nil && e.active[s] == 0 {
			// No active source in the partition: by the FrontierProgram
			// contract every edge here is a no-op, so the file is not
			// read. An empty file elides nothing, so it is not counted.
			if fileRecs > 0 {
				res.skippedEdges += fileRecs
				res.skippedParts++
			}
			continue
		}
		var need func(core.SrcSpan) bool
		if e.fp != nil && e.active[s] < vhi-vlo && tiles != nil {
			need = func(sp core.SrcSpan) bool { return sp.Intersects(e.cur) }
		}
		segs, nRecs, nTiles := planSegments(tiles, s, need, fileRecs)
		res.skippedEdges += nRecs
		res.skippedTiles += nTiles
		if len(segs) == 0 {
			continue
		}
		// Degree-aware combining buffers: a denser partition repeats
		// update destinations more, so combining gets a wider window. A
		// plain append buffer gains nothing from width and stays at base.
		privCap := basePrivCap
		if e.combine != nil {
			privCap = core.DegreeAwareBufRecs(basePrivCap, fileRecs, vhi-vlo)
		}
		verts, lo, err := e.loadVerts(s, false)
		if err != nil {
			return res, err
		}
		winHi := vlo + int64(len(verts))
		phys, logical, checked, err := streamSegments(e.cfg.Context, edgeFiles[s], s, tiles, !e.cfg.NoVerify, segs, e.bufEdgeRecs, !e.cfg.NoPrefetch, func(chunk []core.Edge) error {
			// A corrupted record must never be dereferenced: the tile CRC
			// only closes at tile granularity, after the chunk has
			// scattered, so a bit-flipped Src or Dst would index outside
			// the vertex window or the shuffle plan before verification
			// catches it. The shuffle invariant is that every record of
			// partition s's file sources inside s's window.
			for _, ed := range chunk {
				if int64(ed.Src) < vlo || int64(ed.Src) >= winHi || int64(ed.Dst) >= e.nv {
					return fmt.Errorf("diskengine: edge file %s: record (%d -> %d) outside partition %d window [%d,%d) of %d vertices: %w",
						edgeFiles[s].name, ed.Src, ed.Dst, s, vlo, winHi, e.nv, storage.ErrCorrupted)
				}
			}
			res.streamed += int64(len(chunk))
			// Scatter the chunk in segments that fit the output buffer
			// (combining only ever shrinks a segment's append volume, so
			// the room reserved for a segment still suffices).
			for off := 0; off < len(chunk); {
				room := e.tp.Room()
				if room == 0 {
					if err := e.tp.Flush(); err != nil {
						return err
					}
					continue
				}
				take := len(chunk) - off
				if take > room {
					take = room
				}
				nSent, nCross, nCombined, nSynced := e.scatterSegment(chunk[off:off+take], verts, lo, s, privCap)
				res.sent += nSent
				res.scatterCombined += nCombined
				res.synced += nSynced
				e.stats.CrossPartitionUpdates += nCross
				off += take
			}
			return nil
		})
		res.physEdge += phys
		res.logicalEdge += logical
		e.stats.BytesChecksummed += checked
		if err != nil {
			return res, err
		}
		if tr != nil {
			tr.Span(0, "partition", pStart, time.Since(pStart),
				map[string]int64{"p": int64(s), "edges": res.streamed - pStreamedBefore})
		}
	}

	flow, err := e.tp.Seal()
	res.foldCombined, res.written = flow.Combined, flow.Delivered
	return res, err
}

// basePrivCap is the baseline capacity (records) of the scatter's
// thread-private buffers; core.DegreeAwareBufRecs scales it per partition.
const basePrivCap = 1024

// scatterSegment applies Scatter to a slice of edges in parallel, appending
// updates through thread-private buffers (§4.1). verts holds the current
// partition's vertex window starting at vertex id lo; p is the partition
// being scattered, for cross-partition accounting; privCap is the
// degree-aware private buffer capacity for this partition.
func (e *engine[V, M]) scatterSegment(edges []core.Edge, verts []V, lo int64, p, privCap int) (int64, int64, int64, int64) {
	workers := e.cfg.Threads
	if len(edges) < 4096 || workers <= 1 {
		return e.scatterRange(edges, verts, lo, p, privCap)
	}
	var total, totalCross, totalCombined, totalSynced atomic.Int64
	var wg sync.WaitGroup
	chunk := (len(edges) + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		a, b := wkr*chunk, (wkr+1)*chunk
		if b > len(edges) {
			b = len(edges)
		}
		if a >= b {
			break
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			nSent, nCross, nCombined, nSynced := e.scatterRange(edges[a:b], verts, lo, p, privCap)
			total.Add(nSent)
			totalCross.Add(nCross)
			totalCombined.Add(nCombined)
			totalSynced.Add(nSynced)
		}(a, b)
	}
	wg.Wait()
	return total.Load(), totalCross.Load(), totalCombined.Load(), totalSynced.Load()
}

// scatterRange scatters one thread's contiguous run of a segment. With
// replication active, updates addressed to mirrored hubs are merged into a
// range-local mirror accumulator and flushed as sync updates when the
// range is done — the out-of-core engine syncs per scatter range rather
// than per partition (its segments are scattered by multiple threads), so
// it flushes somewhat more syncs than the in-memory engine; the absorbed
// flood is the same.
func (e *engine[V, M]) scatterRange(edges []core.Edge, verts []V, lo int64, p, privCap int) (sent, cross, combined, synced int64) {
	flush := func(recs []core.Update[M]) { e.tp.Send(p, recs) }
	if e.combine != nil {
		cb := core.NewCombineBuffer[M](privCap, e.combine)
		var mb *core.MirrorBuffer[M]
		if e.rep != nil {
			mb = e.mbPool.Get().(*core.MirrorBuffer[M])
		}
		for _, ed := range edges {
			if m, ok := e.prog.Scatter(ed, &verts[int64(ed.Src)-lo]); ok {
				sent++
				if mb != nil && mb.Absorb(ed.Dst, m) {
					continue
				}
				if e.part.Of(ed.Dst) != uint32(p) {
					cross++
				}
				if cb.Add(ed.Dst, m) {
					cb.Drain(flush)
				}
			}
		}
		if mb != nil {
			combined += mb.Merged
			synced = mb.Flush(func(u core.Update[M]) {
				if e.part.Of(u.Dst) != uint32(p) {
					cross++
				}
				if cb.Add(u.Dst, u.Val) {
					cb.Drain(flush)
				}
			})
			e.mbPool.Put(mb)
		}
		cb.Drain(flush)
		return sent, cross, combined + cb.Combined, synced
	}
	priv := make([]core.Update[M], 0, privCap)
	for _, ed := range edges {
		if m, ok := e.prog.Scatter(ed, &verts[int64(ed.Src)-lo]); ok {
			sent++
			if e.part.Of(ed.Dst) != uint32(p) {
				cross++
			}
			priv = append(priv, core.Update[M]{Dst: ed.Dst, Val: m})
			if len(priv) == cap(priv) {
				flush(priv)
				priv = priv[:0]
			}
		}
	}
	flush(priv)
	return sent, cross, 0, 0
}

// gatherPhase drains each partition's sealed update stream from the
// transport onto its vertex window. With selective scheduling an
// update-empty partition is skipped outright: no gather can change its
// state, so neither its update stream nor (in spill mode) its vertex file
// is touched. The transport owns stream verification (the file transport
// checks byte count and running CRC32C, the exchange validates frames);
// the engine still refuses any update whose destination falls outside the
// partition window before it indexes the vertex slice, since a stream
// checksum only closes after the whole partition is consumed.
func (e *engine[V, M]) gatherPhase() error {
	for p := 0; p < e.k; p++ {
		if err := e.cfg.Context.Err(); err != nil { // between partition files
			return err
		}
		if e.fp != nil && e.tp.Pending(p) == 0 {
			continue
		}
		verts, lo, err := e.loadVerts(p, true)
		if err != nil {
			return err
		}
		winHi := lo + int64(len(verts))
		name := e.updFiles[p].name
		if err := e.tp.Drain(p, func(chunk []core.Update[M]) error {
			for _, u := range chunk {
				if int64(u.Dst) < lo || int64(u.Dst) >= winHi {
					return fmt.Errorf("diskengine: update file %s: update for vertex %d outside partition window [%d,%d): %w",
						name, u.Dst, lo, winHi, storage.ErrCorrupted)
				}
			}
			e.gatherChunk(chunk, verts, lo)
			return nil
		}); err != nil {
			return err
		}
		if err := e.storeVerts(p, verts); err != nil {
			return err
		}
	}
	return nil
}

// gatherChunk applies a chunk of updates to the partition's vertex window.
// With multiple workers the chunk is first shuffled by destination
// sub-range so workers touch disjoint vertices — the in-memory engine
// layered inside the disk engine (§4.3). With selective scheduling every
// receiver is marked into the next frontier: receipt of an update, not a
// state change, is what (conservatively) activates a vertex, so the
// frontier is identical whether or not the stream was pre-combined.
func (e *engine[V, M]) gatherChunk(chunk []core.Update[M], verts []V, lo int64) {
	workers := e.cfg.Threads
	if workers <= 1 || len(chunk) < 8192 {
		for _, u := range chunk {
			e.prog.Gather(u.Dst, &verts[int64(u.Dst)-lo], u.Val)
			if e.fp != nil {
				e.nxt.Mark(u.Dst)
			}
		}
		return
	}
	subK := core.NextPow2(workers * 4)
	subPart := core.NewSplit(int64(len(verts)), subK)
	if e.subA == nil || e.subA.Cap() < e.bufUpdRecs {
		e.subA = streambuf.New[core.Update[M]](e.bufUpdRecs)
		e.subB = streambuf.New[core.Update[M]](e.bufUpdRecs)
	}
	plan, err := streambuf.NewPlan(subK, subK)
	if err != nil { // cannot happen: subK is a power of two
		panic(err)
	}
	e.subA.Reset()
	e.subA.Fill(chunk)
	res := streambuf.Shuffle(e.subA, e.subB, plan, workers, func(u core.Update[M]) uint32 {
		return subPart.Of(core.VertexID(int64(u.Dst) - lo))
	})
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sp := int(cursor.Add(1)) - 1
				if sp >= subK {
					return
				}
				res.Bucket(sp, func(run []core.Update[M]) {
					for _, u := range run {
						e.prog.Gather(u.Dst, &verts[int64(u.Dst)-lo], u.Val)
						if e.fp != nil {
							e.nxt.Mark(u.Dst)
						}
					}
				})
			}
		}()
	}
	wg.Wait()
}

// loadVerts returns the vertex window of partition p starting at vertex lo.
// In spill mode the window is read from the partition's vertex file;
// forWrite distinguishes gather loads (which will be stored back) purely
// for symmetry — reads happen either way.
func (e *engine[V, M]) loadVerts(p int, forWrite bool) ([]V, int64, error) {
	lo, hi := e.part.Range(p, e.nv)
	if e.allVerts != nil {
		return e.allVerts[lo:hi], lo, nil
	}
	buf := e.vertsBuf[:hi-lo]
	vf := e.vertFiles[p]
	recs, err := readFull(vf.f, buf, 0, pod.Size[V]())
	if err != nil {
		return nil, 0, err
	}
	if len(recs) != len(buf) {
		return nil, 0, fmt.Errorf("diskengine: vertex file %s short: %d records, want %d: %w",
			vf.name, len(recs), len(buf), storage.ErrCorrupted)
	}
	if !e.cfg.NoVerify {
		raw := pod.AsBytes(buf)
		if got := storage.Checksum(raw); got != vf.crc {
			return nil, 0, fmt.Errorf("diskengine: vertex file %s: checksum %08x, want %08x: %w",
				vf.name, got, vf.crc, storage.ErrCorrupted)
		}
		e.stats.BytesChecksummed += int64(len(raw))
	}
	return buf, lo, nil
}

// storeVerts persists a partition's vertex window after gather. A no-op
// when all vertices are held in memory (§3.2 optimization 1). The rewrite
// resets the file's running checksum, so the next loadVerts verifies
// against exactly this window.
func (e *engine[V, M]) storeVerts(p int, verts []V) error {
	if e.allVerts != nil {
		return nil
	}
	return e.vertFiles[p].writeAllAt(pod.AsBytes(verts))
}

// vertexView returns the VertexView for phase hooks.
func (e *engine[V, M]) vertexView() core.VertexView[V] {
	if e.allVerts != nil {
		return core.SliceView[V](e.allVerts)
	}
	return &spillView[V, M]{e: e}
}

// spillView streams spilled partitions through phase hooks, persisting
// mutations.
type spillView[V, M any] struct{ e *engine[V, M] }

func (s *spillView[V, M]) NumVertices() int64 { return s.e.nv }

func (s *spillView[V, M]) ForEach(fn func(core.VertexID, *V)) {
	for p := 0; p < s.e.k; p++ {
		verts, lo, err := s.e.loadVerts(p, true)
		if err != nil {
			return
		}
		for i := range verts {
			fn(core.VertexID(lo+int64(i)), &verts[i])
		}
		if err := s.e.storeVerts(p, verts); err != nil {
			return
		}
	}
}

// materializeVertices returns the full final vertex state in original
// input order (ID-valued state remapped, relabeling undone).
func (e *engine[V, M]) materializeVertices() ([]V, error) {
	out := e.allVerts
	if out == nil {
		out = make([]V, e.nv)
		for p := 0; p < e.k; p++ {
			verts, lo, err := e.loadVerts(p, false)
			if err != nil {
				return nil, err
			}
			copy(out[lo:], verts)
		}
	}
	if e.asg != nil && !e.asg.Identity() {
		if rm, ok := any(e.prog).(core.StateRemapper[V]); ok {
			for i := range out {
				rm.RemapState(&out[i], e.asg.OldID)
			}
		}
		out = core.RestoreOrder(out, e.asg.Relabel)
	}
	return out, nil
}

// closeTransport shuts the update transport down — stopping any live write
// pipeline an error path abandoned mid-scatter — before cleanup removes the
// partition files underneath it. Safe when setup failed before the
// transport existed.
func (e *engine[V, M]) closeTransport() {
	if e.tp != nil {
		e.tp.Close()
		e.tp = nil
	}
}

// cleanup removes partition files unless the caller asked to keep them.
func (e *engine[V, M]) cleanup() {
	if e.cfg.KeepFiles {
		return
	}
	for _, fs := range [][]*partFile{e.edgeFiles, e.bwdFiles, e.updFiles, e.vertFiles} {
		for _, f := range fs {
			if f != nil {
				f.remove()
			}
		}
	}
}
