package diskengine

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/streambuf"
	"repro/internal/transport/conformance"
)

// closingFileTransport closes the update files it drains through with the
// transport, so the conformance suite can own the full lifecycle.
type closingFileTransport struct {
	*fileTransport[int64]
	files []*partFile
}

func (c *closingFileTransport) Close() error {
	err := c.fileTransport.Close()
	for _, f := range c.files {
		f.remove()
	}
	return err
}

// newConformanceFileTransport builds a fileTransport over fresh update
// files on a zero-latency simulated SSD.
func newConformanceFileTransport(t *testing.T, k int, nv int64, capacity, bufRecs, threads int, combine, bypass bool) core.UpdateTransport[int64] {
	t.Helper()
	dev := storage.NewSim(storage.SSDParams("conf", 1, 0))
	files := make([]*partFile, k)
	for p := 0; p < k; p++ {
		var err error
		if files[p], err = createPartFile(dev, fmt.Sprintf("conf-p%04d.updates", p)); err != nil {
			t.Fatalf("createPartFile: %v", err)
		}
	}
	split := core.NewSplit(nv, k)
	plan, err := streambuf.NewPlan(k, k)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	var fold func(*streambuf.Buffer[core.Update[int64]]) int64
	if combine {
		fold = core.NewUpdateFolder(split, threads, func(a, b int64) int64 { return a + b }).Fold
	}
	var checked atomic.Int64
	tp := newFileTransport(fileTransportConfig[int64]{
		files:      files,
		plan:       plan,
		key:        func(u core.Update[int64]) uint32 { return split.Of(u.Dst) },
		threads:    threads,
		bufRecs:    bufRecs,
		fold:       fold,
		bypass:     bypass,
		prefetch:   true,
		verify:     true,
		onVerified: func(n int64) { checked.Add(n) },
	})
	return &closingFileTransport{fileTransport: tp, files: files}
}

// TestFileTransportConformance pins the out-of-core update-file writeback
// to the UpdateTransport contract in its three operating shapes: the
// single-buffer bypass (updates never touch disk), the always-write path
// (bypass off, one window), and the windowed path (several shuffle+write
// flushes per iteration).
func TestFileTransportConformance(t *testing.T) {
	shapes := []struct {
		name   string
		bypass bool
		window func(capacity int) int
	}{
		{"bypass", true, nil},
		{"writeback", false, nil},
		{"windowed", false, func(capacity int) int { return (capacity + 3) / 4 }},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			conformance.Run(t, conformance.Maker{
				Name: "disk-file-" + sh.name,
				New: func(t *testing.T, k int, nv int64, capacity, threads int, combine bool) core.UpdateTransport[int64] {
					bufRecs := capacity
					if sh.window != nil {
						bufRecs = sh.window(capacity)
					}
					return newConformanceFileTransport(t, k, nv, capacity, bufRecs, threads, combine, sh.bypass)
				},
				Window:           sh.window,
				SingleSenderFIFO: true,
			})
		})
	}
}
