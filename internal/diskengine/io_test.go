package diskengine

import (
	"testing"

	"repro/internal/pod"
	"repro/internal/storage"
	"repro/internal/streambuf"
)

type rec struct {
	K uint32
	V uint32
}

func writeRecs(t *testing.T, dev storage.Device, name string, recs []rec) *partFile {
	t.Helper()
	pf, err := createPartFile(dev, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.appendBytes(pod.AsBytes(recs)); err != nil {
		t.Fatal(err)
	}
	return pf
}

func makeRecs(n int) []rec {
	out := make([]rec, n)
	for i := range out {
		out[i] = rec{K: uint32(i % 7), V: uint32(i)}
	}
	return out
}

// TestChunkReaderModes verifies the async (prefetching) and sync readers
// stream identical record sequences across chunk-size boundaries.
func TestChunkReaderModes(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	recs := makeRecs(1000)
	pf := writeRecs(t, dev, "a", recs)

	for _, prefetch := range []bool{true, false} {
		for _, chunk := range []int{1, 7, 128, 1000, 5000} {
			rd := newChunkReader[rec](pf.f, pf.size, chunk, prefetch)
			var got []rec
			for {
				c, err := rd.Next()
				if err != nil {
					t.Fatal(err)
				}
				if c == nil {
					break
				}
				if len(c) > chunk {
					t.Fatalf("chunk of %d exceeds limit %d", len(c), chunk)
				}
				got = append(got, c...)
			}
			rd.Close()
			if len(got) != len(recs) {
				t.Fatalf("prefetch=%v chunk=%d: %d records, want %d", prefetch, chunk, len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("prefetch=%v chunk=%d: record %d mismatch", prefetch, chunk, i)
				}
			}
		}
	}
}

func TestChunkReaderEmptyFile(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	pf, _ := createPartFile(dev, "empty")
	for _, prefetch := range []bool{true, false} {
		rd := newChunkReader[rec](pf.f, 0, 16, prefetch)
		c, err := rd.Next()
		if err != nil || c != nil {
			t.Fatalf("empty file: c=%v err=%v", c, err)
		}
		rd.Close()
	}
}

func TestChunkReaderEarlyClose(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	pf := writeRecs(t, dev, "a", makeRecs(10000))
	rd := newChunkReader[rec](pf.f, pf.size, 64, true)
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	rd.Close() // must not deadlock with the reader goroutine mid-flight
}

// TestBucketWriterPipeline stresses the flush pipeline: many flushes, all
// records land in the right files in append order per bucket.
func TestBucketWriterPipeline(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	const k = 4
	files := make([]*partFile, k)
	for p := 0; p < k; p++ {
		var err error
		files[p], err = createPartFile(dev, string(rune('a'+p)))
		if err != nil {
			t.Fatal(err)
		}
	}
	plan, _ := streambuf.NewPlan(k, k)
	w := newBucketWriter(64, files, plan, func(r rec) uint32 { return r.K % k }, 2, nil)

	const total = 10_000
	next := 0
	for next < total {
		room := w.Room()
		if room == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		batch := make([]rec, 0, room)
		for len(batch) < room && next < total {
			batch = append(batch, rec{K: uint32(next), V: uint32(next)})
			next++
		}
		if !w.Buf().Append(batch) {
			t.Fatal("append failed with room available")
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if w.flushes < 2 {
		t.Fatalf("expected multiple flushes, got %d", w.flushes)
	}

	seen := 0
	for p := 0; p < k; p++ {
		n := files[p].size / int64(pod.Size[rec]())
		buf := make([]rec, n)
		recs, err := readFull(files[p].f, buf, 0, pod.Size[rec]())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if int(r.K%k) != p {
				t.Fatalf("record %d landed in bucket %d", r.K, p)
			}
		}
		seen += len(recs)
	}
	if seen != total {
		t.Fatalf("recovered %d records, want %d", seen, total)
	}
}

// TestBucketWriterBypass returns the in-memory buffer when nothing spilled.
func TestBucketWriterBypass(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	files := []*partFile{mustPart(t, dev, "x"), mustPart(t, dev, "y")}
	plan, _ := streambuf.NewPlan(2, 2)
	w := newBucketWriter(1000, files, plan, func(r rec) uint32 { return r.K % 2 }, 2, nil)
	w.Buf().Append(makeRecs(100))
	buf, err := w.FinishBypass()
	if err != nil {
		t.Fatal(err)
	}
	if buf == nil {
		t.Fatal("bypass did not trigger")
	}
	if buf.BucketLen(0)+buf.BucketLen(1) != 100 {
		t.Fatalf("bypass buffer holds %d records", buf.BucketLen(0)+buf.BucketLen(1))
	}
	if files[0].size != 0 || files[1].size != 0 {
		t.Fatal("bypass still wrote files")
	}
}

// TestBucketWriterNoBypassAfterFlush: once anything spilled, the tail must
// spill too and no in-memory buffer is returned.
func TestBucketWriterNoBypassAfterFlush(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	files := []*partFile{mustPart(t, dev, "x"), mustPart(t, dev, "y")}
	plan, _ := streambuf.NewPlan(2, 2)
	w := newBucketWriter(64, files, plan, func(r rec) uint32 { return r.K % 2 }, 1, nil)
	w.Buf().Append(makeRecs(64))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Buf().Append(makeRecs(10))
	buf, err := w.FinishBypass()
	if err != nil {
		t.Fatal(err)
	}
	if buf != nil {
		t.Fatal("bypass triggered after a flush")
	}
	if files[0].size+files[1].size != 74*int64(pod.Size[rec]()) {
		t.Fatalf("files hold %d bytes", files[0].size+files[1].size)
	}
}

func mustPart(t *testing.T, dev storage.Device, name string) *partFile {
	t.Helper()
	pf, err := createPartFile(dev, name)
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestEngineDeterministicAcrossConfigs: WCC must give identical results
// regardless of thread count, partition count, prefetching or bypass.
func TestEngineDeterministicAcrossConfigs(t *testing.T) {
	src, _ := smallGraph(77)
	var want []wccState
	for i, cfg := range []Config{
		{Device: ssd(0), Threads: 1, IOUnit: 8 << 10, Partitions: 1},
		{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 8, NoPrefetch: true},
		{Device: ssd(0), Threads: 2, IOUnit: 32 << 10, Partitions: 2, NoUpdateBypass: true},
		{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 4, ForceVertexSpill: true},
	} {
		res, err := Run(src, &wccProg{}, cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		if want == nil {
			want = res.Vertices
			continue
		}
		for v := range want {
			if res.Vertices[v].Label != want[v].Label {
				t.Fatalf("cfg %d: vertex %d differs", i, v)
			}
		}
	}
}
