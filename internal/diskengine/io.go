package diskengine

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/pod"
	"repro/internal/storage"
	"repro/internal/streambuf"
)

// partFile is one append-only partition file (edges, updates or vertices).
// crc is the running CRC32C of every byte appended since creation (or the
// last truncate/writeAllAt) — the read-path verifier for files whose whole
// stream is re-read: update files at gather, vertex spill windows, and raw
// edge files streamed end to end.
type partFile struct {
	dev  storage.Device
	name string
	f    storage.File
	size int64 // append offset
	crc  uint32
}

func createPartFile(dev storage.Device, name string) (*partFile, error) {
	f, err := dev.Create(name)
	if err != nil {
		return nil, err
	}
	return &partFile{dev: dev, name: name, f: f}, nil
}

// appendBytes appends b at the current end of file, retrying short writes
// the way readFull retries short reads. The append offset and running
// checksum advance only past bytes confirmed written, so a failed append
// leaves the file positionally consistent: a retry of the same append
// overwrites any torn prefix the device may have persisted.
func (p *partFile) appendBytes(b []byte) error {
	for len(b) > 0 {
		n, err := p.f.WriteAt(b, p.size)
		if err != nil {
			return fmt.Errorf("diskengine: append %s: %w", p.name, err)
		}
		if n <= 0 {
			return fmt.Errorf("diskengine: append %s: write stalled at offset %d", p.name, p.size)
		}
		p.crc = storage.ChecksumUpdate(p.crc, b[:n])
		p.size += int64(n)
		b = b[n:]
	}
	return nil
}

// writeAllAt replaces the file's whole contents with b — the vertex-spill
// store path. On success the running checksum covers exactly b.
func (p *partFile) writeAllAt(b []byte) error {
	off := int64(0)
	for off < int64(len(b)) {
		n, err := p.f.WriteAt(b[off:], off)
		if err != nil {
			return fmt.Errorf("diskengine: write %s: %w", p.name, err)
		}
		if n <= 0 {
			return fmt.Errorf("diskengine: write %s: write stalled at offset %d", p.name, off)
		}
		off += int64(n)
	}
	p.size = int64(len(b))
	p.crc = storage.Checksum(b)
	return nil
}

// truncate empties the file. On SSDs the paper relies on truncation
// translating to TRIM to relieve the flash garbage collector (§3.3); the
// storage layer counts it as such.
func (p *partFile) truncate() error {
	p.size = 0
	p.crc = 0
	return p.f.Truncate(0)
}

func (p *partFile) close() error { return p.f.Close() }

func (p *partFile) remove() error {
	p.f.Close()
	return p.dev.Remove(p.name)
}

// chunkReader streams a partFile sequentially in fixed-size chunks of
// records, prefetching the next chunk into a second buffer while the caller
// processes the current one (prefetch distance 1, §3.3).
type chunkReader[T any] struct {
	recSize   int
	cur       []T
	delivered int64 // bytes returned through Next so far

	// async mode
	ready chan readRes[T]
	free  chan []T
	done  chan struct{}

	// sync mode (prefetch disabled, used by the ablation)
	f         storage.File
	off, end  int64
	start     int64
	chunkRecs int
	buf       []T
}

type readRes[T any] struct {
	recs []T
	err  error
}

// newChunkReader streams f from byte offset 0 to end. chunkRecs is the
// number of records per I/O request.
func newChunkReader[T any](f storage.File, end int64, chunkRecs int, prefetch bool) *chunkReader[T] {
	return newChunkReaderRange[T](f, 0, end, chunkRecs, prefetch)
}

// newChunkReaderRange streams the byte range [start, end) of f — the
// selective-scatter read path, where only the active segments of an edge
// file are streamed and the skipped tiles in between are never read. Both
// offsets must be record-aligned.
func newChunkReaderRange[T any](f storage.File, start, end int64, chunkRecs int, prefetch bool) *chunkReader[T] {
	r := &chunkReader[T]{recSize: pod.Size[T](), chunkRecs: chunkRecs, f: f, off: start, start: start, end: end}
	if !prefetch {
		r.buf = make([]T, chunkRecs)
		return r
	}
	r.ready = make(chan readRes[T], 1)
	r.free = make(chan []T, 2)
	r.done = make(chan struct{})
	r.free <- make([]T, chunkRecs)
	r.free <- make([]T, chunkRecs)
	go r.reader()
	return r
}

// reader is the dedicated I/O goroutine (§3.3: one I/O thread per stream).
func (r *chunkReader[T]) reader() {
	defer close(r.ready)
	off := r.start
	for off < r.end {
		var buf []T
		select {
		case buf = <-r.free:
		case <-r.done:
			return
		}
		n := int64(r.chunkRecs)
		if rem := (r.end - off) / int64(r.recSize); n > rem {
			n = rem
		}
		recs, err := readFull(r.f, buf[:n], off, r.recSize)
		if err == nil && len(recs) == 0 {
			// Zero-progress EOF on a record boundary: the file is shorter
			// than the caller's bookkeeping says — the shape a silently
			// torn write leaves behind. End the stream instead of spinning;
			// the caller's record-count check turns the shortfall into
			// ErrCorrupted.
			return
		}
		select {
		case r.ready <- readRes[T]{recs: recs, err: err}:
		case <-r.done:
			return
		}
		if err != nil {
			return
		}
		off += int64(len(recs)) * int64(r.recSize)
	}
}

// readFull reads len(buf) records at byte offset off, retrying short reads.
func readFull[T any](f storage.File, buf []T, off int64, recSize int) ([]T, error) {
	raw := pod.AsBytes(buf)
	got := 0
	for got < len(raw) {
		n, err := f.ReadAt(raw[got:], off+int64(got))
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	if got%recSize != 0 {
		return nil, fmt.Errorf("diskengine: torn record: %d bytes at offset %d: %w", got, off, storage.ErrCorrupted)
	}
	return buf[:got/recSize], nil
}

// Next returns the next chunk, or nil at end of stream. The returned slice
// is only valid until the following Next call.
func (r *chunkReader[T]) Next() ([]T, error) {
	if r.ready == nil { // synchronous mode
		if r.off >= r.end {
			return nil, nil
		}
		n := int64(r.chunkRecs)
		if rem := (r.end - r.off) / int64(r.recSize); n > rem {
			n = rem
		}
		recs, err := readFull(r.f, r.buf[:n], r.off, r.recSize)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			// Zero-progress EOF (see reader): end the stream; the caller's
			// record-count check reports the truncation.
			return nil, nil
		}
		r.off += int64(len(recs)) * int64(r.recSize)
		r.delivered += int64(len(recs)) * int64(r.recSize)
		return recs, nil
	}
	if r.cur != nil {
		r.free <- r.cur[:cap(r.cur)]
		r.cur = nil
	}
	res, ok := <-r.ready
	if !ok {
		return nil, nil
	}
	if res.err != nil {
		return nil, res.err
	}
	r.cur = res.recs
	r.delivered += int64(len(res.recs)) * int64(r.recSize)
	return res.recs, nil
}

// Close releases the reader goroutine.
func (r *chunkReader[T]) Close() {
	if r.done != nil {
		close(r.done)
	}
}

// PhysBytes returns the byte volume delivered through Next so far. A raw
// reader's physical and logical volumes coincide (see edgeStream).
func (r *chunkReader[T]) PhysBytes() int64 { return r.delivered }

// bucketWriter is the merged shuffle+write pipeline of the scatter phase
// (paper Figure 6): records are appended into the current stream buffer;
// when it fills it is shuffled into per-partition chunks which a dedicated
// writer goroutine appends to the partition files, overlapped with the
// caller filling the next buffer. Three stream buffers rotate through the
// roles current / in-flight / shuffle-scratch, which together with the two
// input buffers gives the five buffers of §3.4.
type bucketWriter[T any] struct {
	files   []*partFile
	plan    streambuf.Plan
	key     func(T) uint32
	threads int
	// fold, when non-nil, is applied to every shuffled buffer before its
	// buckets are written — the combining stage that merges
	// same-destination records so fewer bytes reach the update files. It
	// returns the number of records merged away.
	fold func(*streambuf.Buffer[T]) int64
	// observe, when non-nil, sees every bucket run in exactly the order it
	// is appended to its file. It runs on the writer goroutine (single-
	// threaded, overlapped with the caller's next fill) and is how the
	// selective-streaming tile index is built during the existing edge
	// shuffle, without an extra pass. Set before the first Flush.
	observe func(bucket int, run []T)
	// sink, when non-nil, replaces the raw bucket append entirely: the
	// run is handed to it instead of being written, and the sink owns the
	// file append (the compressed-tile layout encodes whole tiles here).
	// Like observe it runs on the writer goroutine, in exact append
	// order. Set before the first Flush; mutually exclusive with observe.
	sink func(bucket int, run []T) error

	cur     *streambuf.Buffer[T]
	free    chan *streambuf.Buffer[T]
	queue   chan *streambuf.Buffer[T]
	wg      sync.WaitGroup
	flushes int
	// combined and written account the fold: records merged away, and
	// records that survived to be written (or, for the bypass path, kept
	// for the in-memory gather). Only touched by the coordinating
	// goroutine; read after Finish/FinishBypass.
	combined int64
	written  int64

	mu  sync.Mutex
	err error
}

func newBucketWriter[T any](capacity int, files []*partFile, plan streambuf.Plan, key func(T) uint32, threads int, fold func(*streambuf.Buffer[T]) int64) *bucketWriter[T] {
	w := &bucketWriter[T]{
		files:   files,
		plan:    plan,
		key:     key,
		threads: threads,
		fold:    fold,
		free:    make(chan *streambuf.Buffer[T], 3),
		queue:   make(chan *streambuf.Buffer[T], 1),
	}
	w.cur = streambuf.New[T](capacity)
	w.free <- streambuf.New[T](capacity)
	w.free <- streambuf.New[T](capacity)
	w.wg.Add(1)
	go w.writer()
	return w
}

func (w *bucketWriter[T]) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// Err returns the first error encountered by the pipeline.
func (w *bucketWriter[T]) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// writer drains shuffled buffers, appending each bucket to its file.
func (w *bucketWriter[T]) writer() {
	defer w.wg.Done()
	for buf := range w.queue {
		for p := range w.files {
			var err error
			buf.Bucket(p, func(run []T) {
				if err == nil {
					if w.sink != nil {
						err = w.sink(p, run)
						return
					}
					if w.observe != nil {
						w.observe(p, run)
					}
					err = w.files[p].appendBytes(pod.AsBytes(run))
				}
			})
			if err != nil {
				w.setErr(err)
				break
			}
		}
		buf.Reset()
		w.free <- buf
	}
}

// Buf returns the current append target. Concurrent appenders may use it
// until the next Flush/Finish call from the coordinating goroutine.
func (w *bucketWriter[T]) Buf() *streambuf.Buffer[T] { return w.cur }

// Room returns the remaining capacity of the current buffer.
func (w *bucketWriter[T]) Room() int { return w.cur.Cap() - w.cur.Len() }

// Flush shuffles the current buffer and hands it to the writer goroutine,
// installing a fresh append target. Must be called from the coordinating
// goroutine only.
func (w *bucketWriter[T]) Flush() error {
	if err := w.Err(); err != nil {
		return err
	}
	if w.cur.Len() == 0 {
		return nil
	}
	w.flushes++
	scratch := <-w.free
	res := streambuf.Shuffle(w.cur, scratch, w.plan, w.threads, w.key)
	if w.fold != nil {
		w.combined += w.fold(res)
	}
	w.written += int64(res.Len())
	other := scratch
	if res == scratch {
		other = w.cur
	}
	other.Reset()
	w.free <- other
	w.queue <- res
	w.cur = <-w.free
	return w.Err()
}

// FinishBypass completes the pipeline. If nothing was ever flushed to disk
// — all updates of the scatter phase fit in a single stream buffer — it
// shuffles the buffer in memory and returns it, letting the gather phase
// consume it directly (the §3.2 optimization). Otherwise it flushes the
// tail and returns nil.
func (w *bucketWriter[T]) FinishBypass() (*streambuf.Buffer[T], error) {
	if w.flushes == 0 {
		scratch := <-w.free
		res := streambuf.Shuffle(w.cur, scratch, w.plan, w.threads, w.key)
		if w.fold != nil {
			w.combined += w.fold(res)
		}
		w.written += int64(res.Len())
		close(w.queue)
		w.wg.Wait()
		return res, w.Err()
	}
	if err := w.Flush(); err != nil {
		close(w.queue)
		w.wg.Wait()
		return nil, err
	}
	close(w.queue)
	w.wg.Wait()
	return nil, w.Err()
}

// Finish flushes the tail and waits for all writes to complete.
func (w *bucketWriter[T]) Finish() error {
	err := w.Flush()
	close(w.queue)
	w.wg.Wait()
	if err != nil {
		return err
	}
	return w.Err()
}
