package diskengine

import (
	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
)

// tileSpan is one edge-file tile: a fixed-size run of records (the last
// tile of a partition may be short) and its core.SrcSpan source summary.
// A tile is skippable in an iteration exactly when its span misses the
// frontier — with a locality-aware partitioner packing communities into
// contiguous ID ranges, spans are narrow and skips frequent.
type tileSpan struct {
	recs int64
	span core.SrcSpan
	// Physical placement of the encoded tile in its edge file. Raw-layout
	// tiles sit implicitly at their record-prefix × record size, so both
	// stay zero; the compressed layout needs them because encoded tiles
	// are variable-size.
	off, bytes int64
	// crc is the CRC32C of the tile's raw record bytes, recorded as the
	// shuffle writes them. The raw read path verifies each streamed tile
	// against it; compressed tiles carry their checksum in the tilecodec
	// frame instead and leave this zero.
	crc uint32
}

// diskTiles is the per-partition tile index of a set of edge files. It is
// built *during* the pre-processing edge shuffle: the bucketWriter's
// observer hands it every run in exactly file-append order, so tile i of
// partition p always describes records [i*tileRecs, ...) of edge file p.
// observe runs on the single writer goroutine; the index is read-only
// afterwards.
type diskTiles struct {
	tileRecs int64
	// compressed marks the tilecodec on-disk layout: tiles are variable-
	// size encoded blobs at (off, bytes) rather than fixed runs of raw
	// records, the index is maintained by the shuffle's tileCompressor
	// sink instead of observe, and it is authoritative for reading the
	// files at all — a compressed file cannot be streamed without it.
	compressed bool
	parts      [][]tileSpan
	open       []tileSpan // per-partition tile still being filled
	// Codec accounting, filled during the shuffle alongside the index:
	// delta-encoded tile count, and the logical (decoded) vs physical
	// (encoded) byte volume of the layout as written.
	tilesCompressed int64
	logicalBytes    int64
	physBytes       int64
}

func newDiskTiles(k, tileRecs int) *diskTiles {
	return &diskTiles{
		tileRecs: int64(tileRecs),
		parts:    make([][]tileSpan, k),
		open:     make([]tileSpan, k),
	}
}

// newDiskTilesFor returns a tile index for the raw or compressed layout.
func newDiskTilesFor(k, tileRecs int, compressed bool) *diskTiles {
	t := newDiskTiles(k, tileRecs)
	t.compressed = compressed
	return t
}

// totalRecs returns the logical record count of partition p's edge file —
// for the compressed layout the file size says nothing about it, the
// index is the source of truth.
func (t *diskTiles) totalRecs(p int) int64 {
	var n int64
	for _, tile := range t.parts[p] {
		n += tile.recs
	}
	return n
}

// observe folds one appended run into partition p's tiles, accumulating
// each tile's source span and record-byte checksum in tile-sized steps.
func (t *diskTiles) observe(p int, run []core.Edge) {
	open := &t.open[p]
	for len(run) > 0 {
		take := t.tileRecs - open.recs
		if take > int64(len(run)) {
			take = int64(len(run))
		}
		seg := run[:take]
		if open.recs == 0 {
			open.span = core.NewSrcSpan(seg[0].Src)
		}
		for _, ed := range seg {
			open.span.Add(ed.Src)
		}
		open.crc = storage.ChecksumUpdate(open.crc, pod.AsBytes(seg))
		open.recs += take
		run = run[take:]
		if open.recs == t.tileRecs {
			t.parts[p] = append(t.parts[p], *open)
			open.recs, open.crc = 0, 0
		}
	}
}

// finish closes every partition's trailing short tile. Call after the
// bucketWriter's Finish, when no more runs will be observed.
func (t *diskTiles) finish() {
	for p := range t.open {
		if t.open[p].recs > 0 {
			t.parts[p] = append(t.parts[p], t.open[p])
			t.open[p].recs, t.open[p].crc = 0, 0
		}
	}
}

// recRange is a contiguous record range [lo, hi) of one edge file.
type recRange struct {
	lo, hi int64
}

// activeSegments walks partition p's tiles against the frontier and
// returns the coalesced record ranges that must be streamed, plus the
// number of records and tiles skipped. wantRecs is the file's actual
// record count: if the index does not cover it exactly (it always should;
// this is a safety net, not an expected path) the whole file is returned
// as one segment and nothing is skipped.
func (t *diskTiles) activeSegments(p int, front *core.Frontier, wantRecs int64) (segs []recRange, skippedRecs, skippedTiles int64) {
	return t.activeSegmentsFunc(p, func(s core.SrcSpan) bool { return s.Intersects(front) }, wantRecs)
}

// activeSegmentsFunc is activeSegments over an arbitrary tile predicate —
// shared-pass execution streams a tile when *any* co-scheduled job's
// frontier needs it, so the predicate there is a union over jobs.
func (t *diskTiles) activeSegmentsFunc(p int, need func(core.SrcSpan) bool, wantRecs int64) (segs []recRange, skippedRecs, skippedTiles int64) {
	var total int64
	for _, tile := range t.parts[p] {
		total += tile.recs
	}
	if total != wantRecs {
		return []recRange{{0, wantRecs}}, 0, 0
	}
	off := int64(0)
	for _, tile := range t.parts[p] {
		if need(tile.span) {
			if n := len(segs); n > 0 && segs[n-1].hi == off {
				segs[n-1].hi = off + tile.recs
			} else {
				segs = append(segs, recRange{off, off + tile.recs})
			}
		} else {
			skippedRecs += tile.recs
			skippedTiles++
		}
		off += tile.recs
	}
	return segs, skippedRecs, skippedTiles
}

// edgeSegment is one contiguous read of an edge file as planned by
// planSegments: a logical record range [lo, hi) plus — in the compressed
// layout — the run of encoded tiles covering it. nil tiles means raw
// records at lo × record size.
type edgeSegment struct {
	lo, hi int64
	tiles  []tileSpan
}

// planSegments plans the streaming of partition p's edge file: the whole
// file when need is nil, else only the coalesced runs whose tile source
// spans satisfy need. fileRecs is the file's logical record count (see
// edgeFileRecs). The skip counts are zero when need is nil. It is the one
// place both layouts' read planning meets: the raw path delegates to
// activeSegmentsFunc (keeping its whole-file safety net), the compressed
// path walks its authoritative index directly.
func planSegments(t *diskTiles, p int, need func(core.SrcSpan) bool, fileRecs int64) (segs []edgeSegment, skippedRecs, skippedTiles int64) {
	if t == nil || (need == nil && !t.compressed) {
		if fileRecs == 0 {
			return nil, 0, 0
		}
		return []edgeSegment{{lo: 0, hi: fileRecs}}, 0, 0
	}
	if !t.compressed {
		rr, sr, st := t.activeSegmentsFunc(p, need, fileRecs)
		for _, r := range rr {
			segs = append(segs, edgeSegment{lo: r.lo, hi: r.hi})
		}
		return segs, sr, st
	}
	tiles := t.parts[p]
	off := int64(0)
	for i := 0; i < len(tiles); {
		if need != nil && !need(tiles[i].span) {
			skippedRecs += tiles[i].recs
			skippedTiles++
			off += tiles[i].recs
			i++
			continue
		}
		j, lo := i, off
		for j < len(tiles) && (need == nil || need(tiles[j].span)) {
			off += tiles[j].recs
			j++
		}
		segs = append(segs, edgeSegment{lo: lo, hi: off, tiles: tiles[i:j]})
		i = j
	}
	return segs, skippedRecs, skippedTiles
}

// edgeFileRecs returns the logical record count of partition p's edge
// file: the byte size over the record size for the raw layout, the tile
// index's total for the compressed one.
func edgeFileRecs(f *partFile, tiles *diskTiles, p int) int64 {
	if tiles != nil && tiles.compressed {
		return tiles.totalRecs(p)
	}
	return f.size / edgeRecSize
}
