package diskengine

import (
	"repro/internal/core"
)

// tileSpan is one edge-file tile: a fixed-size run of records (the last
// tile of a partition may be short) and its core.SrcSpan source summary.
// A tile is skippable in an iteration exactly when its span misses the
// frontier — with a locality-aware partitioner packing communities into
// contiguous ID ranges, spans are narrow and skips frequent.
type tileSpan struct {
	recs int64
	span core.SrcSpan
}

// diskTiles is the per-partition tile index of a set of edge files. It is
// built *during* the pre-processing edge shuffle: the bucketWriter's
// observer hands it every run in exactly file-append order, so tile i of
// partition p always describes records [i*tileRecs, ...) of edge file p.
// observe runs on the single writer goroutine; the index is read-only
// afterwards.
type diskTiles struct {
	tileRecs int64
	parts    [][]tileSpan
	open     []tileSpan // per-partition tile still being filled
}

func newDiskTiles(k, tileRecs int) *diskTiles {
	return &diskTiles{
		tileRecs: int64(tileRecs),
		parts:    make([][]tileSpan, k),
		open:     make([]tileSpan, k),
	}
}

// observe folds one appended run into partition p's tiles.
func (t *diskTiles) observe(p int, run []core.Edge) {
	open := &t.open[p]
	for _, ed := range run {
		if open.recs == 0 {
			open.span = core.NewSrcSpan(ed.Src)
		} else {
			open.span.Add(ed.Src)
		}
		open.recs++
		if open.recs == t.tileRecs {
			t.parts[p] = append(t.parts[p], *open)
			open.recs = 0
		}
	}
}

// finish closes every partition's trailing short tile. Call after the
// bucketWriter's Finish, when no more runs will be observed.
func (t *diskTiles) finish() {
	for p := range t.open {
		if t.open[p].recs > 0 {
			t.parts[p] = append(t.parts[p], t.open[p])
			t.open[p].recs = 0
		}
	}
}

// recRange is a contiguous record range [lo, hi) of one edge file.
type recRange struct {
	lo, hi int64
}

// activeSegments walks partition p's tiles against the frontier and
// returns the coalesced record ranges that must be streamed, plus the
// number of records and tiles skipped. wantRecs is the file's actual
// record count: if the index does not cover it exactly (it always should;
// this is a safety net, not an expected path) the whole file is returned
// as one segment and nothing is skipped.
func (t *diskTiles) activeSegments(p int, front *core.Frontier, wantRecs int64) (segs []recRange, skippedRecs, skippedTiles int64) {
	return t.activeSegmentsFunc(p, func(s core.SrcSpan) bool { return s.Intersects(front) }, wantRecs)
}

// activeSegmentsFunc is activeSegments over an arbitrary tile predicate —
// shared-pass execution streams a tile when *any* co-scheduled job's
// frontier needs it, so the predicate there is a union over jobs.
func (t *diskTiles) activeSegmentsFunc(p int, need func(core.SrcSpan) bool, wantRecs int64) (segs []recRange, skippedRecs, skippedTiles int64) {
	var total int64
	for _, tile := range t.parts[p] {
		total += tile.recs
	}
	if total != wantRecs {
		return []recRange{{0, wantRecs}}, 0, 0
	}
	off := int64(0)
	for _, tile := range t.parts[p] {
		if need(tile.span) {
			if n := len(segs); n > 0 && segs[n-1].hi == off {
				segs[n-1].hi = off + tile.recs
			} else {
				segs = append(segs, recRange{off, off + tile.recs})
			}
		} else {
			skippedRecs += tile.recs
			skippedTiles++
		}
		off += tile.recs
	}
	return segs, skippedRecs, skippedTiles
}
