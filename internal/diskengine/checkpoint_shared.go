package diskengine

// checkpoint_shared.go is the iteration-level checkpoint of the shared-pass
// path (Prepared.RunMany / RunJob under Config.Checkpoint) — the same
// contract checkpoint.go gives solo runs, restated for a set of jobs whose
// vertex state lives in memory. At an iteration boundary the pass's whole
// resumable state is, per job, exactly three things: the vertex bytes, the
// frontier the next iteration scatters, and whether the job already
// converged — update streams are empty between iterations by construction.
// core.Snapshotter exposes those three; the snapshot concatenates every
// job's section into one framed, checksummed file next to the prepared
// partition files, double-buffered across two slots (iter&1) with the magic
// written last, so a torn write is indistinguishable from no snapshot:
//
//	[8B magic "XSCKPS1\n"][8B iteration][8B jobs][8B identity][16B zero]
//	per job: [8B flags][vertex bytes][frontier words?]
//	[4B crc32c]
//
// The CRC covers everything after the magic and before itself. identity
// fingerprints the pass shape (partitioner, partition count, graph size,
// and each job's name, state size and frontier-ness) so a stale snapshot
// from a different job set is never loaded. Resume picks the valid
// candidate with the highest iteration, verifies its checksum end to end
// before loading a byte, and falls back to a fresh start when none
// survives — a corrupt checkpoint costs the resume, never the result.
// Checkpointing assumes one checkpointed pass per Prepared prefix at a
// time: this is the CLI/solo-job path, and the serving scheduler never
// sets Config.Checkpoint.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
)

const (
	sharedCkptMagic = "XSCKPS1\n"
	sharedCkptDone  = 1 << 0 // job had already converged
	sharedCkptFront = 1 << 1 // job section carries frontier words
)

// snapshotters returns every run's checkpoint extension, or nil when any
// run does not implement core.Snapshotter — such a set is never
// checkpointed rather than partially checkpointed.
func snapshotters(runs []core.JobRun) []core.Snapshotter {
	snaps := make([]core.Snapshotter, len(runs))
	for i, r := range runs {
		s, ok := r.(core.Snapshotter)
		if !ok {
			return nil
		}
		snaps[i] = s
	}
	return snaps
}

func (pp *Prepared) sharedCkptName(slot int) string {
	return fmt.Sprintf("%sds-checkpoint-%d.xsck", pp.cfg.Prefix, slot)
}

// sharedCkptIdentity fingerprints the pass shape a snapshot is only valid
// for: the prepared layout plus each job's name, state size and whether it
// runs selectively.
func (pp *Prepared) sharedCkptIdentity(runs []core.JobRun, snaps []core.Snapshotter) uint32 {
	s := fmt.Sprintf("shared|%s|%d|%d|%d", pp.partName, pp.k, pp.nv, pp.ne)
	for i, r := range runs {
		s += fmt.Sprintf("|%s:%d:%t", r.Name(), len(snaps[i].StateBytes()), snaps[i].FrontierWords() != nil)
	}
	return storage.Checksum([]byte(s))
}

// sharedCkptWant is the exact file size a valid snapshot of snaps must have.
func sharedCkptWant(snaps []core.Snapshotter) int64 {
	want := int64(ckptHeaderLen)
	for _, s := range snaps {
		want += 8 + int64(len(s.StateBytes())) + int64(len(s.FrontierWords()))*8
	}
	return want + 4
}

// writeSharedCheckpoint snapshots the state iteration iter+1 starts from —
// called after every job's EndIteration, so phase folds are in the vertex
// bytes and the frontier swap has happened. Returns the bytes written for
// the pass's per-pass I/O tally.
func (pp *Prepared) writeSharedCheckpoint(iter int, runs []core.JobRun, snaps []core.Snapshotter) (int64, error) {
	name := pp.sharedCkptName(iter & 1)
	f, err := pp.cfg.Device.Create(name)
	if err != nil {
		return 0, fmt.Errorf("diskengine: checkpoint %s: %w", name, err)
	}
	fail := func(err error) (int64, error) {
		f.Close()
		return 0, fmt.Errorf("diskengine: checkpoint %s: %w", name, err)
	}

	hdr := make([]byte, ckptHeaderLen) // magic stays zero until the end
	binary.LittleEndian.PutUint64(hdr[8:], uint64(iter))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(runs)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(pp.sharedCkptIdentity(runs, snaps)))
	if err := writeFull(f, hdr, 0); err != nil {
		return fail(err)
	}
	crc := storage.ChecksumUpdate(0, hdr[8:])
	off := int64(ckptHeaderLen)
	writeBody := func(raw []byte) error {
		if err := writeFull(f, raw, off); err != nil {
			return err
		}
		crc = storage.ChecksumUpdate(crc, raw)
		off += int64(len(raw))
		return nil
	}
	var jf [8]byte
	for i, s := range snaps {
		var flags uint64
		if runs[i].Done() {
			flags |= sharedCkptDone
		}
		fw := s.FrontierWords()
		if fw != nil {
			flags |= sharedCkptFront
		}
		binary.LittleEndian.PutUint64(jf[:], flags)
		if err := writeBody(jf[:]); err != nil {
			return fail(err)
		}
		if err := writeBody(s.StateBytes()); err != nil {
			return fail(err)
		}
		if fw != nil {
			if err := writeBody(pod.AsBytes(fw)); err != nil {
				return fail(err)
			}
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	if err := writeFull(f, trailer[:], off); err != nil {
		return fail(err)
	}
	// Body and trailer are in place: publish the snapshot by writing the
	// magic last.
	if err := writeFull(f, []byte(sharedCkptMagic), 0); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("diskengine: checkpoint %s: %w", name, err)
	}
	return off + 4, nil
}

// sharedCkptInspect fully validates slot's snapshot — magic, shape, size
// and the end-to-end checksum — without loading any of it, and returns the
// iteration it captured. Any defect just disqualifies the candidate. The
// verification reads are accounted on pass.
func (pp *Prepared) sharedCkptInspect(pass *core.Stats, slot int, runs []core.JobRun, snaps []core.Snapshotter) (int, bool) {
	f, err := pp.cfg.Device.Open(pp.sharedCkptName(slot))
	if err != nil {
		return 0, false
	}
	defer f.Close()
	hdr := make([]byte, ckptHeaderLen)
	if readBytes(f, hdr, 0) != nil || string(hdr[:8]) != sharedCkptMagic {
		return 0, false
	}
	pass.BytesRead += int64(ckptHeaderLen)
	iter := binary.LittleEndian.Uint64(hdr[8:])
	njobs := binary.LittleEndian.Uint64(hdr[16:])
	ident := binary.LittleEndian.Uint64(hdr[24:])
	if njobs != uint64(len(runs)) || uint32(ident) != pp.sharedCkptIdentity(runs, snaps) {
		return 0, false
	}
	if iter >= uint64(pp.cfg.MaxIterations) {
		return 0, false
	}
	want := sharedCkptWant(snaps)
	if f.Size() != want {
		return 0, false
	}
	crc := storage.ChecksumUpdate(0, hdr[8:])
	buf := make([]byte, 1<<20)
	end := want - 4
	for off := int64(ckptHeaderLen); off < end; {
		n := int64(len(buf))
		if n > end-off {
			n = end - off
		}
		if readBytes(f, buf[:n], off) != nil {
			return 0, false
		}
		crc = storage.ChecksumUpdate(crc, buf[:n])
		off += n
	}
	var trailer [4]byte
	if readBytes(f, trailer[:], end) != nil {
		return 0, false
	}
	pass.BytesRead += want - int64(ckptHeaderLen)
	if binary.LittleEndian.Uint32(trailer[:]) != crc {
		return 0, false
	}
	pass.BytesChecksummed += want - 12 // everything between magic and CRC
	return int(iter), true
}

// sharedCkptLoad restores every job's vertex state, frontier and converged
// flag from slot's already-verified snapshot.
func (pp *Prepared) sharedCkptLoad(pass *core.Stats, slot int, snaps []core.Snapshotter) bool {
	f, err := pp.cfg.Device.Open(pp.sharedCkptName(slot))
	if err != nil {
		return false
	}
	defer f.Close()
	off := int64(ckptHeaderLen)
	var jf [8]byte
	for _, s := range snaps {
		if readBytes(f, jf[:], off) != nil {
			return false
		}
		off += 8
		flags := binary.LittleEndian.Uint64(jf[:])
		fw := s.FrontierWords()
		if (flags&sharedCkptFront != 0) != (fw != nil) {
			return false
		}
		raw := s.StateBytes()
		if readBytes(f, raw, off) != nil {
			return false
		}
		off += int64(len(raw))
		pass.BytesRead += 8 + int64(len(raw))
		if fw != nil {
			words := make([]uint64, len(fw))
			if readBytes(f, pod.AsBytes(words), off) != nil {
				return false
			}
			off += int64(len(words)) * 8
			pass.BytesRead += int64(len(words)) * 8
			if s.RestoreFrontier(words) != nil {
				return false
			}
		}
		if flags&sharedCkptDone != 0 {
			s.MarkDone()
		}
	}
	return true
}

// trySharedResume restores the newest valid snapshot into the runs and
// returns the iteration RunMany should start from (0 when nothing usable
// was found). When a verified candidate still fails to load — device
// trouble between the two passes — reinit must re-establish freshly
// initialized runs in place before the next candidate is tried, so a
// failed resume can never leave half-restored vertices behind.
func (pp *Prepared) trySharedResume(pass *core.Stats, runs []core.JobRun, snaps []core.Snapshotter, reinit func() error) (int, error) {
	type cand struct{ slot, iter int }
	var cands []cand
	for slot := 0; slot < 2; slot++ {
		if it, ok := pp.sharedCkptInspect(pass, slot, runs, snaps); ok {
			cands = append(cands, cand{slot, it})
		}
	}
	if len(cands) == 2 && cands[1].iter > cands[0].iter {
		cands[0], cands[1] = cands[1], cands[0]
	}
	for _, c := range cands {
		if pp.sharedCkptLoad(pass, c.slot, snaps) {
			return c.iter + 1, nil
		}
		if err := reinit(); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

// removeSharedCheckpoints deletes both snapshot slots — the pass completed,
// so there is nothing left to resume.
func (pp *Prepared) removeSharedCheckpoints() {
	for slot := 0; slot < 2; slot++ {
		pp.cfg.Device.Remove(pp.sharedCkptName(slot))
	}
}

// removeStaleTransposed deletes transposed partition files a crashed
// attempt built but this pass never adopted — a resume can start past the
// only backward iteration (PageRank's degree pass), in which case the
// previous attempt's .redges files would otherwise be orphaned. Files this
// Prepared did build belong to it and are left for Close.
func (pp *Prepared) removeStaleTransposed() {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.bwdFiles != nil {
		return
	}
	for p := 0; p < pp.k; p++ {
		pp.cfg.Device.Remove(fmt.Sprintf("%sds-p%04d.redges", pp.cfg.Prefix, p))
	}
}
