package diskengine

// checkpoint_shared_test.go covers the shared-pass checkpoint lifecycle
// (checkpoint_shared.go) the same way fault_test.go covers the solo one:
// crash a checkpointed RunJob mid-stream and require the rerun to resume
// past the restored iterations with reference-identical state, reject
// corrupt snapshots, and leave no snapshots behind on success. Both the
// dense path (wcc, vertex bytes only) and the selective path (bfs,
// per-job frontier words in the snapshot) are exercised.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/storage"
)

// crashRunJob fails every device operation past budget and reports whether
// the pass died; checkpoints written before the crash survive on inner.
func crashRunJob(t *testing.T, src core.EdgeSource, job *core.Job, inner storage.Device, budget int64, cfg Config) bool {
	t.Helper()
	cfg.Device = storage.NewFaulty(inner, storage.FaultyOptions{FailAfterOps: budget})
	_, err := RunJob(nil, src, job, cfg)
	return err != nil
}

func requireNoSharedCheckpoints(t *testing.T, dev storage.Device, context string) {
	t.Helper()
	for slot := 0; slot < 2; slot++ {
		name := fmt.Sprintf("ds-checkpoint-%d.xsck", slot)
		if f, err := dev.Open(name); err == nil {
			f.Close()
			t.Fatalf("%s: %s survived", context, name)
		}
	}
}

// TestSharedCheckpointResumeAfterCrash: kill a checkpointed shared pass
// mid-stream, run again on the clean device with the same prefix — the
// pass resumes past the iterations the snapshot restored and the labels
// still match the fault-free run.
func TestSharedCheckpointResumeAfterCrash(t *testing.T) {
	src, _ := smallGraph(31)
	want := wccLabelsOf(t, src)
	base := Config{Threads: 2, IOUnit: 8 << 10, Partitions: 4, Checkpoint: true}
	job := core.NewJob[wccState, core.VertexID](&wccProg{})

	clean := ssd(0)
	cfg := base
	cfg.Device = clean
	res, err := RunJob(nil, src, job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireLabels(t, res.Vertices.([]wccState), want, "fault-free checkpointed pass")
	requireNoSharedCheckpoints(t, clean, "completed pass")
	ds := clean.Stats()
	totalOps := ds.Reads + ds.Writes

	inner := ssd(0)
	for _, frac := range []float64{0.6, 0.45, 0.75, 0.3, 0.9} {
		budget := int64(float64(totalOps) * frac)
		if budget < 1 {
			budget = 1
		}
		if !crashRunJob(t, src, job, inner, budget, base) {
			continue // budget outlasted the pass
		}
		cfg := base
		cfg.Device = inner
		res, err := RunJob(nil, src, job, cfg)
		if err != nil {
			t.Fatalf("resume after crash at %d ops: %v", budget, err)
		}
		if res.Stats.ResumedIterations == 0 {
			continue // crashed before the first snapshot
		}
		if res.Stats.ResumedIterations >= res.Stats.Iterations {
			t.Fatalf("resumed %d of %d iterations: nothing was left to execute, yet the crashed pass did not finish",
				res.Stats.ResumedIterations, res.Stats.Iterations)
		}
		requireLabels(t, res.Vertices.([]wccState), want, "resumed pass")
		requireNoSharedCheckpoints(t, inner, "resumed pass")
		return
	}
	t.Fatal("no crash window produced a resumable shared-pass checkpoint")
}

// TestSharedCheckpointSelectiveResume: a selective pass snapshots its
// frontier alongside the vertex bytes — a resumed BFS must pick up the
// frontier where the crashed pass left it and still produce bit-identical
// state (Dist and the iteration stamp both match the clean run).
func TestSharedCheckpointSelectiveResume(t *testing.T) {
	src := graphgen.Chain(2048, 13)
	base := Config{Threads: 2, IOUnit: 16 << 10, Partitions: 8, TileEdges: 64, Selective: true, Checkpoint: true}
	job := core.NewJob[bfsState, int32](&bfsProg{root: 0})

	clean := ssd(0)
	cfg := base
	cfg.Device = clean
	ref, err := RunJob(nil, src, job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Vertices.([]bfsState)
	requireNoSharedCheckpoints(t, clean, "completed selective pass")
	ds := clean.Stats()
	totalOps := ds.Reads + ds.Writes

	inner := ssd(0)
	for _, frac := range []float64{0.6, 0.45, 0.75, 0.3, 0.9} {
		budget := int64(float64(totalOps) * frac)
		if budget < 1 {
			budget = 1
		}
		if !crashRunJob(t, src, job, inner, budget, base) {
			continue
		}
		cfg := base
		cfg.Device = inner
		res, err := RunJob(nil, src, job, cfg)
		if err != nil {
			t.Fatalf("selective resume after crash at %d ops: %v", budget, err)
		}
		if res.Stats.ResumedIterations == 0 {
			continue
		}
		got := res.Vertices.([]bfsState)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d: resumed %+v, want %+v", i, got[i], want[i])
			}
		}
		return
	}
	t.Fatal("no crash window produced a resumable selective checkpoint")
}

// TestSharedCheckpointCorruptIgnored: flip one bit in every surviving
// snapshot — the resume must reject them, start from scratch, and still
// converge to the right labels.
func TestSharedCheckpointCorruptIgnored(t *testing.T) {
	src, _ := smallGraph(31)
	want := wccLabelsOf(t, src)
	base := Config{Threads: 2, IOUnit: 8 << 10, Partitions: 4, Checkpoint: true}
	job := core.NewJob[wccState, core.VertexID](&wccProg{})

	clean := ssd(0)
	cfg := base
	cfg.Device = clean
	if _, err := RunJob(nil, src, job, cfg); err != nil {
		t.Fatal(err)
	}
	ds := clean.Stats()
	totalOps := ds.Reads + ds.Writes

	for _, frac := range []float64{0.6, 0.45, 0.75, 0.3, 0.9} {
		inner := ssd(0)
		budget := int64(float64(totalOps) * frac)
		if budget < 1 {
			budget = 1
		}
		if !crashRunJob(t, src, job, inner, budget, base) {
			continue
		}
		corrupted := 0
		for slot := 0; slot < 2; slot++ {
			f, err := inner.Open(fmt.Sprintf("ds-checkpoint-%d.xsck", slot))
			if err != nil {
				continue
			}
			if f.Size() > ckptHeaderLen+8 {
				b := make([]byte, 1)
				if _, err := f.ReadAt(b, ckptHeaderLen+5); err != nil {
					t.Fatal(err)
				}
				b[0] ^= 0x10
				if _, err := f.WriteAt(b, ckptHeaderLen+5); err != nil {
					t.Fatal(err)
				}
				corrupted++
			}
			f.Close()
		}
		if corrupted == 0 {
			continue // crash predates any snapshot
		}
		cfg := base
		cfg.Device = inner
		res, err := RunJob(nil, src, job, cfg)
		if err != nil {
			t.Fatalf("rerun over corrupt shared checkpoints: %v", err)
		}
		if res.Stats.ResumedIterations != 0 {
			t.Fatalf("resumed %d iterations from corrupt snapshots", res.Stats.ResumedIterations)
		}
		requireLabels(t, res.Vertices.([]wccState), want, "pass after rejecting corrupt checkpoints")
		return
	}
	t.Fatal("no crash window left a shared checkpoint to corrupt")
}
