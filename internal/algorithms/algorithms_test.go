package algorithms

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
	"repro/internal/refalgo"
	"repro/internal/storage"
)

var memCfg = memengine.Config{Threads: 2}

func undirected(scale int, seed int64) (core.EdgeSource, []core.Edge) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: seed, Undirected: true})
	edges, _ := core.Materialize(src)
	return src, edges
}

func directed(scale int, seed int64) (core.EdgeSource, []core.Edge) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: seed})
	edges, _ := core.Materialize(src)
	return src, edges
}

func TestWCC(t *testing.T) {
	src, edges := undirected(9, 1)
	res, err := memengine.Run(src, NewWCC(), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.Components(src.NumVertices(), edges)
	got := Labels(res.Vertices)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %d want %d", v, got[v], want[v])
		}
	}
}

func TestBFS(t *testing.T) {
	src, edges := directed(9, 2)
	root := core.VertexID(0)
	res, err := memengine.Run(src, NewBFS(root), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.BFSLevels(src.NumVertices(), edges, root)
	got := Levels(res.Vertices)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: level %d want %d", v, got[v], want[v])
		}
	}
}

func TestSSSP(t *testing.T) {
	src, edges := undirected(9, 3)
	root := core.VertexID(1)
	res, err := memengine.Run(src, NewSSSP(root), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.Dijkstra(src.NumVertices(), edges, root)
	got := Distances(res.Vertices)
	for v := range got {
		if math.IsInf(want[v], 1) {
			if got[v] != Inf32 {
				t.Fatalf("vertex %d reachable? got %f", v, got[v])
			}
			continue
		}
		if math.Abs(float64(got[v])-want[v]) > 1e-3 {
			t.Fatalf("vertex %d: dist %f want %f", v, got[v], want[v])
		}
	}
}

func TestSpMV(t *testing.T) {
	src, edges := directed(8, 4)
	res, err := memengine.Run(src, NewSpMV(), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 1 {
		t.Fatalf("SpMV took %d iterations", res.Stats.Iterations)
	}
	want := make([]float64, src.NumVertices())
	for _, e := range edges {
		want[e.Dst] += float64(res.Vertices[e.Src].X) * float64(e.Weight)
	}
	for v := range want {
		if math.Abs(float64(res.Vertices[v].Y)-want[v]) > 1e-2*(1+math.Abs(want[v])) {
			t.Fatalf("y[%d] = %f, want %f", v, res.Vertices[v].Y, want[v])
		}
	}
}

func TestPageRank(t *testing.T) {
	src, edges := directed(9, 5)
	const iters = 5
	res, err := memengine.Run(src, NewPageRank(iters), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != iters+1 { // +1 degree-count iteration
		t.Fatalf("iterations = %d", res.Stats.Iterations)
	}
	want := refalgo.PageRank(src.NumVertices(), edges, iters)
	got := Ranks(res.Vertices)
	for v := range got {
		if math.Abs(float64(got[v])-want[v]) > 1e-2*(1+want[v]) {
			t.Fatalf("rank[%d] = %f, want %f", v, got[v], want[v])
		}
	}
}

func TestConductance(t *testing.T) {
	src, edges := undirected(9, 6)
	prog := NewConductance(nil)
	if _, err := memengine.Run(src, prog, memCfg); err != nil {
		t.Fatal(err)
	}
	want := refalgo.Conductance(edges, func(id core.VertexID) bool { return id&1 == 1 })
	if math.Abs(prog.Phi-want) > 1e-9 {
		t.Fatalf("phi = %f, want %f", prog.Phi, want)
	}
	if prog.CutEdges == 0 || prog.VolS == 0 {
		t.Fatalf("degenerate conductance: %+v", prog)
	}
}

func TestMISProperties(t *testing.T) {
	src, edges := undirected(9, 7)
	prog := NewMIS()
	res, err := memengine.Run(src, prog, memCfg)
	if err != nil {
		t.Fatal(err)
	}
	in := InSet(res.Vertices)
	// Every vertex decided.
	for v, s := range res.Vertices {
		if s.Status == MISUndecided {
			t.Fatalf("vertex %d undecided", v)
		}
	}
	// Independence: no edge inside the set.
	for _, e := range edges {
		if e.Src != e.Dst && in[e.Src] && in[e.Dst] {
			t.Fatalf("edge %d-%d inside the set", e.Src, e.Dst)
		}
	}
	// Maximality: every Out vertex has an In neighbour.
	hasInNeighbour := make([]bool, src.NumVertices())
	for _, e := range edges {
		if in[e.Src] {
			hasInNeighbour[e.Dst] = true
		}
	}
	for v := range in {
		if !in[v] && !hasInNeighbour[v] {
			t.Fatalf("vertex %d is Out with no In neighbour", v)
		}
	}
	if prog.Remaining != 0 {
		t.Fatalf("remaining = %d", prog.Remaining)
	}
}

func TestMCSTWeight(t *testing.T) {
	src, edges := undirected(9, 8)
	prog := NewMCST()
	if _, err := memengine.Run(src, prog, memCfg); err != nil {
		t.Fatal(err)
	}
	want := refalgo.KruskalWeight(src.NumVertices(), edges)
	if math.Abs(prog.TotalWeight-want) > 1e-2*(1+want) {
		t.Fatalf("MST weight %f, want %f", prog.TotalWeight, want)
	}
	// Forest edges must exist in the graph.
	exists := make(map[[2]core.VertexID]bool)
	for _, e := range edges {
		exists[[2]core.VertexID{e.Src, e.Dst}] = true
	}
	for _, e := range prog.Edges {
		if !exists[[2]core.VertexID{e.A, e.B}] && !exists[[2]core.VertexID{e.B, e.A}] {
			t.Fatalf("forest edge %v not in graph", e)
		}
	}
}

func TestSCC(t *testing.T) {
	src, edges := directed(8, 9)
	res, err := memengine.Run(src, NewSCC(), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	got := ComponentIDs(res.Vertices)
	want := refalgo.SCC(src.NumVertices(), edges)
	// Same partition: got[u]==got[v] iff want[u]==want[v].
	seen := make(map[uint32]int32)
	for v := range got {
		if got[v] == NoSCC {
			t.Fatalf("vertex %d unassigned", v)
		}
		if w, ok := seen[got[v]]; ok {
			if w != want[v] {
				t.Fatalf("vertex %d: xstream comp %d maps to tarjan %d and %d", v, got[v], w, want[v])
			}
		} else {
			seen[got[v]] = want[v]
		}
	}
	// And the reverse direction: tarjan comps must not be split.
	rev := make(map[int32]uint32)
	for v := range got {
		if g, ok := rev[want[v]]; ok {
			if g != got[v] {
				t.Fatalf("tarjan comp %d split across xstream comps %d and %d", want[v], g, got[v])
			}
		} else {
			rev[want[v]] = got[v]
		}
	}
}

func TestALSImprovesRMSE(t *testing.T) {
	const users = 200
	src := graphgen.Bipartite(users, 40, 3000, 10)
	edges, _ := core.Materialize(src)

	// RMSE at init (0 iterations of solving: run 1 iteration and compare
	// against 3).
	short := NewALS(users, 1)
	resShort, err := memengine.Run(src, short, memCfg)
	if err != nil {
		t.Fatal(err)
	}
	long := NewALS(users, 3)
	resLong, err := memengine.Run(src, long, memCfg)
	if err != nil {
		t.Fatal(err)
	}
	rShort := RMSE(resShort.Vertices, edges, users)
	rLong := RMSE(resLong.Vertices, edges, users)
	if rLong > rShort+1e-6 {
		t.Fatalf("RMSE did not improve: 1 iter %f, 3 iters %f", rShort, rLong)
	}
	if rLong > 0.5 {
		t.Fatalf("training RMSE too high: %f", rLong)
	}
}

func TestBPBeliefs(t *testing.T) {
	src, _ := undirected(8, 11)
	res, err := memengine.Run(src, NewBP(5), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 5 {
		t.Fatalf("iterations = %d", res.Stats.Iterations)
	}
	for v, s := range res.Vertices {
		sum := float64(s.B0) + float64(s.B1)
		if math.Abs(sum-1) > 1e-4 || s.B1 < 0 || s.B1 > 1 {
			t.Fatalf("vertex %d beliefs not normalized: %f + %f", v, s.B0, s.B1)
		}
	}
	// Deterministic across runs.
	res2, _ := memengine.Run(src, NewBP(5), memCfg)
	for v := range res.Vertices {
		if res.Vertices[v].B1 != res2.Vertices[v].B1 {
			t.Fatalf("BP not deterministic at %d", v)
		}
	}
}

func TestHyperANFChainDiameter(t *testing.T) {
	const n = 24
	src := graphgen.Chain(n, 1)
	prog := NewHyperANF()
	res, err := memengine.Run(src, prog, memCfg)
	if err != nil {
		t.Fatal(err)
	}
	// A chain of n vertices has diameter n-1; HyperANF needs about that
	// many steps (HLL collisions can shave a step or two).
	if prog.Steps() < n-4 || prog.Steps() > n+1 {
		t.Fatalf("chain steps = %d, want ≈ %d", prog.Steps(), n-1)
	}
	// Final neighbourhood function ≈ n^2 within HLL tolerance.
	nf := prog.NF[len(prog.NF)-1]
	if nf < 0.5*n*n || nf > 1.7*n*n {
		t.Fatalf("NF = %f, want ≈ %d", nf, n*n)
	}
	if res.Stats.Iterations != prog.Steps() {
		t.Fatalf("iterations %d != steps %d", res.Stats.Iterations, prog.Steps())
	}
}

func TestHyperANFLowDiameterGraph(t *testing.T) {
	src, _ := undirected(10, 12)
	prog := NewHyperANF()
	if _, err := memengine.Run(src, prog, memCfg); err != nil {
		t.Fatal(err)
	}
	if prog.Steps() > 15 {
		t.Fatalf("scale-free graph took %d steps; expected a small diameter", prog.Steps())
	}
	if prog.EffectiveDiameter(0.9) > prog.Steps() {
		t.Fatal("effective diameter exceeds steps")
	}
}

// TestDiskParityAllAlgorithms runs every deterministic algorithm on both
// engines and requires identical vertex state — the strongest cross-engine
// guarantee in the suite.
func TestDiskParityAllAlgorithms(t *testing.T) {
	srcU, _ := undirected(8, 13)
	srcD, _ := directed(8, 13)
	bip := graphgen.Bipartite(100, 20, 1500, 13)

	diskCfg := func() diskengine.Config {
		return diskengine.Config{
			Device:  storage.NewSim(storage.SSDParams("par", 2, 0)),
			Threads: 2, IOUnit: 16 << 10, Partitions: 4,
		}
	}

	runPair := func(name string, src core.EdgeSource, mk func() interface{}) {
		t.Run(name, func(t *testing.T) {
			switch p := mk().(type) {
			case *WCC:
				m, err := memengine.Run(src, p, memCfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := diskengine.Run(src, mk().(*WCC), diskCfg())
				if err != nil {
					t.Fatal(err)
				}
				for i := range m.Vertices {
					if m.Vertices[i] != d.Vertices[i] {
						t.Fatalf("vertex %d differs", i)
					}
				}
			case *SCC:
				m, err := memengine.Run(src, p, memCfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := diskengine.Run(src, mk().(*SCC), diskCfg())
				if err != nil {
					t.Fatal(err)
				}
				for i := range m.Vertices {
					if m.Vertices[i].SCCID != d.Vertices[i].SCCID {
						t.Fatalf("vertex %d differs", i)
					}
				}
			case *MIS:
				m, err := memengine.Run(src, p, memCfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := diskengine.Run(src, mk().(*MIS), diskCfg())
				if err != nil {
					t.Fatal(err)
				}
				for i := range m.Vertices {
					if m.Vertices[i].Status != d.Vertices[i].Status {
						t.Fatalf("vertex %d differs", i)
					}
				}
			case *PageRank:
				m, err := memengine.Run(src, p, memCfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := diskengine.Run(src, mk().(*PageRank), diskCfg())
				if err != nil {
					t.Fatal(err)
				}
				for i := range m.Vertices {
					if math.Abs(float64(m.Vertices[i].Rank-d.Vertices[i].Rank)) > 1e-4 {
						t.Fatalf("vertex %d rank differs: %f vs %f", i, m.Vertices[i].Rank, d.Vertices[i].Rank)
					}
				}
			case *ALS:
				m, err := memengine.Run(src, p, memCfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := diskengine.Run(src, mk().(*ALS), diskCfg())
				if err != nil {
					t.Fatal(err)
				}
				for i := range m.Vertices {
					for k := 0; k < ALSK; k++ {
						if math.Abs(float64(m.Vertices[i].F[k]-d.Vertices[i].F[k])) > 1e-3 {
							t.Fatalf("vertex %d factor %d differs", i, k)
						}
					}
				}
			case *HyperANF:
				m, err := memengine.Run(src, p, memCfg)
				if err != nil {
					t.Fatal(err)
				}
				d, err := diskengine.Run(src, mk().(*HyperANF), diskCfg())
				if err != nil {
					t.Fatal(err)
				}
				for i := range m.Vertices {
					if m.Vertices[i].C != d.Vertices[i].C {
						t.Fatalf("vertex %d sketch differs", i)
					}
				}
			default:
				t.Fatalf("unhandled program type %T", p)
			}
		})
	}

	runPair("wcc", srcU, func() interface{} { return NewWCC() })
	runPair("scc", srcD, func() interface{} { return NewSCC() })
	runPair("mis", srcU, func() interface{} { return NewMIS() })
	runPair("pagerank", srcD, func() interface{} { return NewPageRank(3) })
	runPair("als", bip, func() interface{} { return NewALS(100, 2) })
	runPair("hyperanf", srcU, func() interface{} { return NewHyperANF() })
}
