package algorithms

import "repro/internal/core"

// NoSCC marks a vertex not yet assigned to a strongly connected component.
const NoSCC = ^uint32(0)

// SCCState is per-vertex strongly-connected-components state.
type SCCState struct {
	// Color is the maximum vertex ID that reaches this vertex forward
	// within the unassigned subgraph.
	Color uint32
	// SCCID is the component this vertex was assigned to, or NoSCC.
	SCCID uint32
	// Updated is the iteration at which Color/SCCID last changed.
	Updated int32
}

// SCC computes strongly connected components with the coloring algorithm
// for Pregel-like systems the paper cites (Salihoglu–Widom [47]): repeat
// (1) propagate the maximum vertex ID forward through the unassigned
// subgraph until fixpoint — every vertex colored c is forward-reachable
// from root c — then (2) propagate the root's ID backward along edges
// whose endpoints share the color; everything reached both ways is one
// SCC. Backward iterations stream the transposed edge list, which the
// engine materializes once with a single streaming pass. Requires a
// directed graph.
type SCC struct {
	backward bool
	iter     int32
	// Rounds counts completed color/closure rounds.
	Rounds int
}

// NewSCC returns a strongly connected components program.
func NewSCC() *SCC { return &SCC{} }

// Name implements core.Program.
func (s *SCC) Name() string { return "SCC" }

// Init implements core.Program.
func (s *SCC) Init(id core.VertexID, v *SCCState) {
	v.Color = uint32(id)
	v.SCCID = NoSCC
	v.Updated = 0
}

// StartIteration implements core.IterationStarter.
func (s *SCC) StartIteration(iter int) { s.iter = int32(iter) }

// Direction implements core.DirectedProgram.
func (s *SCC) Direction(iter int) core.Direction {
	if s.backward {
		return core.Backward
	}
	return core.Forward
}

// Scatter implements core.Program.
func (s *SCC) Scatter(e core.Edge, src *SCCState) (uint32, bool) {
	if s.backward {
		// Closure phase: assigned vertices pull same-colored
		// predecessors into their component.
		if src.SCCID == src.Color && src.Updated == s.iter {
			return src.Color, true
		}
		return 0, false
	}
	if src.SCCID == NoSCC && src.Updated == s.iter {
		return src.Color, true
	}
	return 0, false
}

// Gather implements core.Program.
func (s *SCC) Gather(dst core.VertexID, v *SCCState, m uint32) {
	if v.SCCID != NoSCC {
		return
	}
	if s.backward {
		if m == v.Color {
			v.SCCID = m
			v.Updated = s.iter + 1
		}
		return
	}
	if m > v.Color {
		v.Color = m
		v.Updated = s.iter + 1
	}
}

// EndIteration implements core.PhasedProgram: switch between coloring and
// closure when each reaches fixpoint.
func (s *SCC) EndIteration(iter int, sent int64, view core.VertexView[SCCState]) bool {
	if sent > 0 {
		return false // current phase still propagating
	}
	if !s.backward {
		// Coloring converged: color roots start the backward closure.
		view.ForEach(func(id core.VertexID, v *SCCState) {
			if v.SCCID == NoSCC && v.Color == uint32(id) {
				v.SCCID = v.Color
				v.Updated = int32(iter) + 1
			}
		})
		s.backward = true
		return false
	}
	// Closure converged: colored-but-unassigned vertices form the next
	// round's subgraph.
	s.backward = false
	s.Rounds++
	var unassigned int64
	view.ForEach(func(id core.VertexID, v *SCCState) {
		if v.SCCID == NoSCC {
			unassigned++
			v.Color = uint32(id)
			v.Updated = int32(iter) + 1
		}
	})
	return unassigned == 0
}

// RemapState implements core.StateRemapper: component IDs and colors are
// vertex IDs, translated back to input IDs after a relabeled run. The
// component ID is then a valid representative input vertex of the SCC,
// though which member represents it may differ between partitioners.
func (s *SCC) RemapState(v *SCCState, new2old func(core.VertexID) core.VertexID) {
	if v.SCCID != NoSCC {
		v.SCCID = uint32(new2old(core.VertexID(v.SCCID)))
	}
	v.Color = uint32(new2old(core.VertexID(v.Color)))
}

// ComponentIDs extracts the per-vertex SCC assignment.
func ComponentIDs(verts []SCCState) []uint32 {
	out := make([]uint32, len(verts))
	for i := range verts {
		out[i] = verts[i].SCCID
	}
	return out
}
