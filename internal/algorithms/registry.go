package algorithms

// registry.go names every shipped algorithm and builds type-erased jobs
// for it, so callers that receive the algorithm as a *string* — cmd/xstream
// flags, cmd/xserve's POST /jobs body — share one dispatch table instead of
// duplicating a per-algorithm type switch. An entry knows how to construct
// the program from its Params, wrap it as a core.Job for either engine's
// Run/RunMany, and render the finished vertex states both for humans
// (Summarize) and for the serving API (Result, a JSON-encodable payload).

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hll"
)

// Params are the algorithm construction parameters the registry accepts.
// Fields an algorithm does not use are ignored.
type Params struct {
	// Root is the start vertex of bfs/sssp.
	Root core.VertexID `json:"root,omitempty"`
	// Iters is the iteration count of pagerank/bp/als (default 5).
	Iters int `json:"iters,omitempty"`
	// Users is the bipartite user/item boundary of als (required there).
	Users int64 `json:"users,omitempty"`
}

func (p Params) iters() int {
	if p.Iters < 1 {
		return 5
	}
	return p.Iters
}

// Instance is one constructed algorithm run: the type-erased job plus
// closures that render its finished vertex states. Each Instance is a
// single computation — run its Job once.
type Instance struct {
	// Job wraps the program for Run/RunMany on either engine.
	Job *core.Job
	// Summarize renders the job's result vertices as the one-line summary
	// cmd/xstream prints.
	Summarize func(verts any) string
	// Result renders the result vertices as a JSON-encodable payload for
	// the serving API (no NaN/Inf values).
	Result func(verts any) any
	// EvalEdges, when non-nil, renders an extra summary line that needs
	// the input edge list (ALS training RMSE).
	EvalEdges func(verts any, edges []core.Edge) string
}

// ParamUse declares which Params fields an algorithm actually reads. The
// serving layer's result cache canonicalizes submissions with it, so
// equivalent requests (an ignored field set, a default spelled out) share
// one cache entry instead of splitting keys.
type ParamUse struct {
	// Root means the algorithm reads Params.Root.
	Root bool
	// Iters means the algorithm reads Params.Iters (default 5).
	Iters bool
	// Users means the algorithm reads Params.Users.
	Users bool
}

// Spec describes one registered algorithm.
type Spec struct {
	// Name is the canonical lowercase name (the -algo flag / API value).
	Name string
	// Params documents which Params fields the algorithm reads.
	Params string
	// Uses machine-readably mirrors Params for cache canonicalization.
	Uses ParamUse
	// Symmetrize means the engine must stream the undirected
	// (symmetrized) edge list for the results to be meaningful.
	Symmetrize bool
	// New constructs a fresh instance from the parameters.
	New func(p Params) (*Instance, error)
}

// CanonicalParams reduces p to the fields the named algorithm reads, with
// documented defaults applied (Iters < 1 becomes 5). Two submissions with
// equal canonical params compute the same thing — every registered
// algorithm is deterministic (random-looking choices are ID hashes), so
// the serving layer may serve one's result for the other. ok is false for
// unknown algorithms.
func CanonicalParams(name string, p Params) (c Params, ok bool) {
	s, ok := ByName(name)
	if !ok {
		return Params{}, false
	}
	if s.Uses.Root {
		c.Root = p.Root
	}
	if s.Uses.Iters {
		c.Iters = p.iters()
	}
	if s.Uses.Users {
		c.Users = p.Users
	}
	return c, true
}

// ByName returns the spec registered under name.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns every registered algorithm name, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

var registry = []Spec{
	{Name: "wcc", Params: "none (undirected input)", New: newWCCInstance},
	{Name: "scc", Params: "none", New: newSCCInstance},
	{Name: "bfs", Params: "root", Uses: ParamUse{Root: true}, New: newBFSInstance},
	{Name: "sssp", Params: "root", Uses: ParamUse{Root: true}, New: newSSSPInstance},
	{Name: "pagerank", Params: "iters", Uses: ParamUse{Iters: true}, New: newPageRankInstance},
	{Name: "spmv", Params: "none", New: newSpMVInstance},
	{Name: "mis", Params: "none (undirected input)", New: newMISInstance},
	{Name: "mcst", Params: "none (undirected input)", New: newMCSTInstance},
	{Name: "conductance", Params: "none", New: newConductanceInstance},
	{Name: "bp", Params: "iters", Uses: ParamUse{Iters: true}, New: newBPInstance},
	{Name: "als", Params: "users (required), iters", Uses: ParamUse{Iters: true, Users: true}, New: newALSInstance},
	{Name: "hyperanf", Params: "none", Symmetrize: true, New: newHyperANFInstance},
}

func newWCCInstance(Params) (*Instance, error) {
	prog := NewWCC()
	return &Instance{
		Job: core.NewJob[WCCState, core.VertexID](prog),
		Summarize: func(verts any) string {
			n, largest := componentCounts(Labels(verts.([]WCCState)))
			return fmt.Sprintf("components: %d (largest %d vertices)", n, largest)
		},
		Result: func(verts any) any {
			labels := Labels(verts.([]WCCState))
			n, largest := componentCounts(labels)
			return map[string]any{"components": n, "largest": largest, "labels": labels}
		},
	}, nil
}

func newSCCInstance(Params) (*Instance, error) {
	prog := NewSCC()
	return &Instance{
		Job: core.NewJob[SCCState, uint32](prog),
		Summarize: func(verts any) string {
			ids := ComponentIDs(verts.([]SCCState))
			comps := map[uint32]bool{}
			for _, id := range ids {
				comps[id] = true
			}
			return fmt.Sprintf("strongly connected components: %d", len(comps))
		},
		Result: func(verts any) any {
			ids := ComponentIDs(verts.([]SCCState))
			comps := map[uint32]bool{}
			for _, id := range ids {
				comps[id] = true
			}
			return map[string]any{"components": len(comps), "component_ids": ids}
		},
	}, nil
}

func newBFSInstance(p Params) (*Instance, error) {
	prog := NewBFS(p.Root)
	return &Instance{
		Job: core.NewJob[BFSState, int32](prog),
		Summarize: func(verts any) string {
			reached, maxd := bfsReach(Levels(verts.([]BFSState)))
			return fmt.Sprintf("reached %d vertices, max depth %d", reached, maxd)
		},
		Result: func(verts any) any {
			levels := Levels(verts.([]BFSState))
			reached, maxd := bfsReach(levels)
			return map[string]any{"root": p.Root, "reached": reached, "max_depth": maxd, "levels": levels}
		},
	}, nil
}

func newSSSPInstance(p Params) (*Instance, error) {
	prog := NewSSSP(p.Root)
	return &Instance{
		Job: core.NewJob[SSSPState, float32](prog),
		Summarize: func(verts any) string {
			reached := 0
			for _, d := range Distances(verts.([]SSSPState)) {
				if d < 1e38 {
					reached++
				}
			}
			return fmt.Sprintf("reached %d vertices", reached)
		},
		Result: func(verts any) any {
			dists := Distances(verts.([]SSSPState))
			// JSON has no Inf: unreachable vertices report distance -1.
			out := make([]float32, len(dists))
			reached := 0
			for i, d := range dists {
				if d < 1e38 {
					out[i] = d
					reached++
				} else {
					out[i] = -1
				}
			}
			return map[string]any{"root": p.Root, "reached": reached, "distances": out}
		},
	}, nil
}

func newPageRankInstance(p Params) (*Instance, error) {
	prog := NewPageRank(p.iters())
	return &Instance{
		Job: core.NewJob[PRState, float32](prog),
		Summarize: func(verts any) string {
			top := topRanks(Ranks(verts.([]PRState)), 5)
			s := "top ranks:"
			for _, t := range top {
				s += fmt.Sprintf(" v%d=%.2f", t.ID, t.Rank)
			}
			return s
		},
		Result: func(verts any) any {
			ranks := Ranks(verts.([]PRState))
			return map[string]any{"iters": p.iters(), "top": topRanks(ranks, 10), "ranks": ranks}
		},
	}, nil
}

func newSpMVInstance(Params) (*Instance, error) {
	prog := NewSpMV()
	sum := func(verts any) float64 {
		var s float64
		for _, st := range verts.([]SpMVState) {
			s += float64(st.Y)
		}
		return s
	}
	return &Instance{
		Job: core.NewJob[SpMVState, float32](prog),
		Summarize: func(verts any) string {
			return fmt.Sprintf("sum(y) = %.3f", sum(verts))
		},
		Result: func(verts any) any {
			states := verts.([]SpMVState)
			y := make([]float32, len(states))
			for i, st := range states {
				y[i] = st.Y
			}
			return map[string]any{"sum": sum(verts), "y": y}
		},
	}, nil
}

func newMISInstance(Params) (*Instance, error) {
	prog := NewMIS()
	return &Instance{
		Job: core.NewJob[MISState, MISMsg](prog),
		Summarize: func(verts any) string {
			return fmt.Sprintf("independent set size: %d", misSize(verts.([]MISState)))
		},
		Result: func(verts any) any {
			return map[string]any{"size": misSize(verts.([]MISState)), "in_set": InSet(verts.([]MISState))}
		},
	}, nil
}

func newMCSTInstance(Params) (*Instance, error) {
	prog := NewMCST()
	return &Instance{
		Job: core.NewJob[MCSTState, MCSTMsg](prog),
		Summarize: func(any) string {
			return fmt.Sprintf("spanning forest: %d edges, total weight %.3f", len(prog.Edges), prog.TotalWeight)
		},
		Result: func(any) any {
			return map[string]any{"edges": len(prog.Edges), "total_weight": prog.TotalWeight, "forest": prog.Edges}
		},
	}, nil
}

func newConductanceInstance(Params) (*Instance, error) {
	prog := NewConductance(nil)
	return &Instance{
		Job: core.NewJob[CondState, int32](prog),
		Summarize: func(any) string {
			return fmt.Sprintf("conductance of odd-ID subset: %.4f (cut %d, vol %d/%d)",
				prog.Phi, prog.CutEdges, prog.VolS, prog.VolT)
		},
		Result: func(any) any {
			return map[string]any{"phi": prog.Phi, "cut_edges": prog.CutEdges, "vol_s": prog.VolS, "vol_t": prog.VolT}
		},
	}, nil
}

func newBPInstance(p Params) (*Instance, error) {
	prog := NewBP(p.iters())
	mean := func(verts any) float64 {
		states := verts.([]BPState)
		var m float64
		for _, st := range states {
			m += float64(st.B1)
		}
		if len(states) > 0 {
			m /= float64(len(states))
		}
		return m
	}
	return &Instance{
		Job: core.NewJob[BPState, BPMsg](prog),
		Summarize: func(verts any) string {
			return fmt.Sprintf("mean belief(state 1): %.4f", mean(verts))
		},
		Result: func(verts any) any {
			states := verts.([]BPState)
			b1 := make([]float32, len(states))
			for i, st := range states {
				b1[i] = st.B1
			}
			return map[string]any{"mean_belief1": mean(verts), "beliefs1": b1}
		},
	}, nil
}

func newALSInstance(p Params) (*Instance, error) {
	if p.Users <= 0 {
		return nil, fmt.Errorf("als needs users > 0 (the bipartite user/item boundary)")
	}
	prog := NewALS(p.Users, p.iters())
	return &Instance{
		Job: core.NewJob[ALSState, ALSMsg](prog),
		Summarize: func(verts any) string {
			return fmt.Sprintf("trained ALS model: %d users, %d iterations", p.Users, p.iters())
		},
		Result: func(verts any) any {
			return map[string]any{"users": p.Users, "iters": p.iters(), "vertices": len(verts.([]ALSState))}
		},
		EvalEdges: func(verts any, edges []core.Edge) string {
			return fmt.Sprintf("training RMSE: %.4f", RMSE(verts.([]ALSState), edges, core.VertexID(p.Users)))
		},
	}, nil
}

func newHyperANFInstance(Params) (*Instance, error) {
	prog := NewHyperANF()
	return &Instance{
		Job: core.NewJob[ANFState, hll.Counter](prog),
		Summarize: func(any) string {
			return fmt.Sprintf("steps to cover: %d, effective diameter (0.9): %d",
				prog.Steps(), prog.EffectiveDiameter(0.9))
		},
		Result: func(any) any {
			return map[string]any{"steps": prog.Steps(), "effective_diameter_09": prog.EffectiveDiameter(0.9)}
		},
	}, nil
}

// ---- shared renderers ----

func componentCounts(labels []core.VertexID) (components, largest int) {
	counts := map[core.VertexID]int{}
	for _, l := range labels {
		counts[l]++
	}
	for _, c := range counts {
		if c > largest {
			largest = c
		}
	}
	return len(counts), largest
}

func bfsReach(levels []int32) (reached int, maxd int32) {
	for _, d := range levels {
		if d >= 0 {
			reached++
			if d > maxd {
				maxd = d
			}
		}
	}
	return reached, maxd
}

func misSize(verts []MISState) int {
	in := 0
	for _, st := range verts {
		if st.Status == MISIn {
			in++
		}
	}
	return in
}

// RankedVertex is one entry of PageRank's top-N result payload.
type RankedVertex struct {
	ID   core.VertexID `json:"id"`
	Rank float32       `json:"rank"`
}

func topRanks(ranks []float32, n int) []RankedVertex {
	top := make([]RankedVertex, 0, len(ranks))
	for i, r := range ranks {
		top = append(top, RankedVertex{core.VertexID(i), r})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Rank != top[j].Rank {
			return top[i].Rank > top[j].Rank
		}
		return top[i].ID < top[j].ID
	})
	if len(top) > n {
		top = top[:n]
	}
	return top
}
