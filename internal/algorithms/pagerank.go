package algorithms

import "repro/internal/core"

// PRState is per-vertex PageRank state.
type PRState struct {
	Rank float32 // current rank
	Sum  float32 // incoming rank mass accumulated this iteration
	Deg  int32   // out-degree, counted in the first iteration
}

// PageRank runs damped PageRank (d = 0.85) for a fixed number of rank
// iterations, the paper's configuration being 5 (§5.2).
//
// PageRank pushes rank/out-degree along forward edges, so it needs every
// vertex's out-degree first. Iteration 0 counts out-degrees by streaming
// the *transposed* edge list — an edge (u,v) streamed backward delivers an
// update to u, one per out-edge — which exercises the same one-pass
// transpose machinery SCC uses. No sorting or indexing is ever required.
type PageRank struct {
	iters int
	iter  int32
}

// NewPageRank returns a PageRank program running the given number of rank
// iterations (the paper uses 5).
func NewPageRank(iters int) *PageRank {
	if iters < 1 {
		iters = 1
	}
	return &PageRank{iters: iters}
}

// Name implements core.Program.
func (p *PageRank) Name() string { return "Pagerank" }

// Init implements core.Program.
func (p *PageRank) Init(id core.VertexID, v *PRState) {
	v.Rank = 1
	v.Sum = 0
	v.Deg = 0
}

// StartIteration implements core.IterationStarter.
func (p *PageRank) StartIteration(iter int) { p.iter = int32(iter) }

// Direction implements core.DirectedProgram: the degree-counting iteration
// streams the transpose.
func (p *PageRank) Direction(iter int) core.Direction {
	if iter == 0 {
		return core.Backward
	}
	return core.Forward
}

// Scatter implements core.Program.
func (p *PageRank) Scatter(e core.Edge, src *PRState) (float32, bool) {
	if p.iter == 0 {
		// Transposed stream: this update reaches the original source,
		// counting one out-edge.
		return 1, true
	}
	if src.Deg > 0 {
		return src.Rank / float32(src.Deg), true
	}
	return 0, false
}

// Gather implements core.Program. The degree-counting iteration sums the
// update values (each 1) rather than counting updates, so pre-combined
// updates — where several count-1 records merged into one — land the same
// total.
func (p *PageRank) Gather(dst core.VertexID, v *PRState, m float32) {
	if p.iter == 0 {
		v.Deg += int32(m)
		return
	}
	v.Sum += m
}

// Combine implements core.Combiner: rank mass (and the degree counts of
// iteration 0) sum. Degree counting through float32 partial sums is exact
// up to 2^24 per combined partial — a ceiling the paper's graphs stay far
// under (the heaviest hubs in web/social crawls are low millions of
// edges). For inputs with vertices beyond ~16.7M out-degree, run with
// Config.NoCombine, which restores the exact one-update-per-edge count.
func (p *PageRank) Combine(a, b float32) float32 { return a + b }

// EndIteration implements core.PhasedProgram: fold the accumulated rank
// mass into the damped rank and reset the accumulator.
func (p *PageRank) EndIteration(iter int, sent int64, view core.VertexView[PRState]) bool {
	if iter == 0 {
		return false // degrees counted; rank iterations follow
	}
	view.ForEach(func(id core.VertexID, v *PRState) {
		v.Rank = 0.15 + 0.85*v.Sum
		v.Sum = 0
	})
	return iter >= p.iters
}

// Ranks extracts per-vertex ranks.
func Ranks(verts []PRState) []float32 {
	out := make([]float32, len(verts))
	for i := range verts {
		out[i] = verts[i].Rank
	}
	return out
}
