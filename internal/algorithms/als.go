package algorithms

import "repro/internal/core"

// ALSK is the latent factor dimension. With the normal-equation
// accumulators the vertex footprint lands near the ~250 bytes the paper
// reports for ALS (§5.2).
const ALSK = 8

// alsLambda is the ridge regularization weight.
const alsLambda = 0.05

// ALSState is per-vertex alternating-least-squares state: the latent
// factor vector plus the normal-equation accumulators filled during a
// gather phase.
type ALSState struct {
	F [ALSK]float32        // latent factors
	A [ALSK * ALSK]float32 // Σ f·fᵀ over rated neighbours
	B [ALSK]float32        // Σ r·f over rated neighbours
	N int32                // ratings heard this phase
}

// ALS factorizes a bipartite ratings graph (users [0,users), items
// [users,·)) by alternating least squares [Zhou et al.], the paper's
// collaborative-filtering benchmark. One model iteration is two
// scatter-gather iterations: items stream their factors to users, users
// re-solve; then the reverse. The per-vertex solve runs in the phase hook.
// Requires edges stored in both directions (as the Netflix-style
// generators produce).
type ALS struct {
	users core.VertexID
	iters int
	iter  int32

	new2old  func(core.VertexID) core.VertexID
	itemExec []bool // execution-space item membership, built per run
}

// NewALS returns an ALS program for a bipartite graph with the given user
// count, running iters full alternations (the paper uses 5).
func NewALS(users int64, iters int) *ALS {
	if iters < 1 {
		iters = 1
	}
	return &ALS{users: core.VertexID(users), iters: iters}
}

// Name implements core.Program.
func (a *ALS) Name() string { return "ALS" }

// MapVertices implements core.VertexMapper: the user/item boundary is an
// input-ID property. Membership is precomputed into an execution-space
// table here so the per-edge test in Scatter stays a plain slice index
// rather than a random walk through the inverse permutation.
func (a *ALS) MapVertices(n int64, old2new, new2old func(core.VertexID) core.VertexID) {
	a.new2old = new2old
	a.itemExec = make([]bool, n)
	for o := int64(0); o < n; o++ {
		if core.VertexID(o) >= a.users {
			a.itemExec[old2new(core.VertexID(o))] = true
		}
	}
}

// isItem tests item membership for an execution-space ID.
func (a *ALS) isItem(id core.VertexID) bool {
	if a.itemExec != nil {
		return a.itemExec[id]
	}
	return id >= a.users
}

// origID translates an execution ID back to the input ID space.
func (a *ALS) origID(id core.VertexID) core.VertexID {
	if a.new2old != nil {
		return a.new2old(id)
	}
	return id
}

// Init implements core.Program. Factors are seeded from the input ID so
// the starting point is partitioner-independent.
func (a *ALS) Init(id core.VertexID, v *ALSState) {
	orig := a.origID(id)
	for i := range v.F {
		v.F[i] = hashUnit(uint64(orig), uint64(i)+3)
	}
	clearAccum(v)
}

func clearAccum(v *ALSState) {
	for i := range v.A {
		v.A[i] = 0
	}
	for i := range v.B {
		v.B[i] = 0
	}
	v.N = 0
}

// StartIteration implements core.IterationStarter.
func (a *ALS) StartIteration(iter int) { a.iter = int32(iter) }

// solvingUsers reports whether this iteration re-solves the user side.
func (a *ALS) solvingUsers(iter int32) bool { return iter%2 == 0 }

// ALSMsg carries a neighbour's factors and the edge's rating.
type ALSMsg struct {
	F [ALSK]float32
	R float32
}

// Scatter implements core.Program: the non-solving side streams factors.
func (a *ALS) Scatter(e core.Edge, src *ALSState) (ALSMsg, bool) {
	srcIsItem := a.isItem(e.Src)
	if srcIsItem == a.solvingUsers(a.iter) {
		return ALSMsg{F: src.F, R: e.Weight}, true
	}
	return ALSMsg{}, false
}

// Gather implements core.Program: accumulate the normal equations.
func (a *ALS) Gather(dst core.VertexID, v *ALSState, m ALSMsg) {
	for i := 0; i < ALSK; i++ {
		fi := m.F[i]
		for j := 0; j < ALSK; j++ {
			v.A[i*ALSK+j] += fi * m.F[j]
		}
		v.B[i] += m.R * fi
	}
	v.N++
}

// EndIteration implements core.PhasedProgram: solve the regularized normal
// equations for every vertex on the solving side.
func (a *ALS) EndIteration(iter int, sent int64, view core.VertexView[ALSState]) bool {
	view.ForEach(func(id core.VertexID, v *ALSState) {
		if v.N == 0 {
			return
		}
		var mat [ALSK][ALSK + 1]float64
		for i := 0; i < ALSK; i++ {
			for j := 0; j < ALSK; j++ {
				mat[i][j] = float64(v.A[i*ALSK+j])
			}
			mat[i][i] += alsLambda * float64(v.N)
			mat[i][ALSK] = float64(v.B[i])
		}
		solveInPlace(&mat)
		for i := 0; i < ALSK; i++ {
			v.F[i] = float32(mat[i][ALSK])
		}
		clearAccum(v)
	})
	return iter+1 >= 2*a.iters
}

// solveInPlace runs Gaussian elimination with partial pivoting on the
// augmented system; the solution lands in column ALSK.
func solveInPlace(m *[ALSK][ALSK + 1]float64) {
	for col := 0; col < ALSK; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < ALSK; r++ {
			if abs(m[r][col]) > abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		if m[col][col] == 0 {
			continue // singular direction; regularization makes this rare
		}
		inv := 1 / m[col][col]
		for j := col; j <= ALSK; j++ {
			m[col][j] *= inv
		}
		for r := 0; r < ALSK; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := col; j <= ALSK; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Predict returns the model's rating estimate for a user/item pair.
func Predict(verts []ALSState, user, item core.VertexID) float64 {
	var dot float64
	for i := 0; i < ALSK; i++ {
		dot += float64(verts[user].F[i]) * float64(verts[item].F[i])
	}
	return dot
}

// RMSE evaluates the model on a rating list (each undirected pair counted
// once via the user→item direction).
func RMSE(verts []ALSState, edges []core.Edge, users core.VertexID) float64 {
	var sum float64
	var n int64
	for _, e := range edges {
		if e.Src < users && e.Dst >= users {
			d := Predict(verts, e.Src, e.Dst) - float64(e.Weight)
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sqrt64(sum / float64(n))
}

func sqrt64(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 32; i++ {
		x = (x + v/x) / 2
	}
	return x
}
