package algorithms

import (
	"math"

	"repro/internal/core"
)

// Inf32 is the distance of unreached vertices.
var Inf32 = float32(math.Inf(1))

// SSSPState is per-vertex shortest-path state.
type SSSPState struct {
	// Dist is the best known distance from the root (+Inf unreached).
	Dist float32
	// Updated is the iteration at which Dist last improved.
	Updated int32
}

// SSSP computes single-source shortest paths by Bellman–Ford relaxation:
// every iteration streams all edges and relaxes those whose source improved
// in the previous round. Weights must be non-negative for the result to
// equal Dijkstra's.
type SSSP struct {
	root core.VertexID // as constructed, in input ID space
	cur  core.VertexID // root in this run's execution ID space
	iter int32
}

// NewSSSP returns a single-source shortest paths program from root.
func NewSSSP(root core.VertexID) *SSSP { return &SSSP{root: root, cur: root} }

// Name implements core.Program.
func (s *SSSP) Name() string { return "SSSP" }

// MapVertices implements core.VertexMapper: the root moves with the
// partitioner's relabeling.
func (s *SSSP) MapVertices(_ int64, old2new, _ func(core.VertexID) core.VertexID) {
	s.cur = old2new(s.root)
}

// Init implements core.Program.
func (s *SSSP) Init(id core.VertexID, v *SSSPState) {
	if id == s.cur {
		v.Dist = 0
		v.Updated = 0
	} else {
		v.Dist = Inf32
		v.Updated = -1
	}
}

// StartIteration implements core.IterationStarter.
func (s *SSSP) StartIteration(iter int) { s.iter = int32(iter) }

// InitiallyActive implements core.FrontierProgram: Bellman–Ford relaxes
// only edges whose source improved last iteration, so a source that
// received no update cannot scatter.
func (s *SSSP) InitiallyActive(id core.VertexID, v *SSSPState) bool { return id == s.cur }

// Scatter implements core.Program.
func (s *SSSP) Scatter(e core.Edge, src *SSSPState) (float32, bool) {
	if src.Updated == s.iter {
		return src.Dist + e.Weight, true
	}
	return 0, false
}

// Gather implements core.Program.
func (s *SSSP) Gather(dst core.VertexID, v *SSSPState, m float32) {
	if m < v.Dist {
		v.Dist = m
		v.Updated = s.iter + 1
	}
}

// Combine implements core.Combiner: only the shortest tentative distance
// can relax the destination.
func (s *SSSP) Combine(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// Distances extracts per-vertex distances.
func Distances(verts []SSSPState) []float32 {
	out := make([]float32, len(verts))
	for i := range verts {
		out[i] = verts[i].Dist
	}
	return out
}
