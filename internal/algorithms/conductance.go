package algorithms

import "repro/internal/core"

// CondState accumulates per-vertex edge counts for conductance.
type CondState struct {
	Vol   int32 // edges arriving at this vertex
	Cross int32 // of which cross the S / not-S cut
}

// Conductance computes the conductance of a vertex subset S in one
// scatter-gather pass: Φ(S) = |cut(S, V∖S)| / min(vol(S), vol(V∖S)).
// Membership is a pure function of the vertex ID, so both endpoints of an
// edge can be classified during scatter without any random access.
type Conductance struct {
	inS    func(core.VertexID) bool // membership over input IDs
	inExec []bool                   // execution-space membership, built per run
	// Result fields, valid after the run.
	Phi                  float64
	CutEdges, VolS, VolT int64
}

// NewConductance measures the subset defined by inS. A nil inS uses the
// odd-ID subset, a deterministic roughly-half split.
func NewConductance(inS func(core.VertexID) bool) *Conductance {
	if inS == nil {
		inS = func(id core.VertexID) bool { return id&1 == 1 }
	}
	return &Conductance{inS: inS}
}

// Name implements core.Program.
func (c *Conductance) Name() string { return "Conductance" }

// MapVertices implements core.VertexMapper: subset membership is defined
// over input IDs. It is precomputed into an execution-space table so the
// per-edge tests in Scatter stay plain slice indexes rather than random
// walks through the inverse permutation.
func (c *Conductance) MapVertices(n int64, old2new, _ func(core.VertexID) core.VertexID) {
	c.inExec = make([]bool, n)
	for o := int64(0); o < n; o++ {
		if c.inS(core.VertexID(o)) {
			c.inExec[old2new(core.VertexID(o))] = true
		}
	}
}

// member tests subset membership for an execution-space vertex ID.
func (c *Conductance) member(id core.VertexID) bool {
	if c.inExec != nil {
		return c.inExec[id]
	}
	return c.inS(id)
}

// Init implements core.Program.
func (c *Conductance) Init(id core.VertexID, v *CondState) {
	v.Vol = 0
	v.Cross = 0
}

// Scatter implements core.Program: every edge sends whether it crosses the
// cut, computable from the two endpoint IDs alone.
func (c *Conductance) Scatter(e core.Edge, src *CondState) (int32, bool) {
	if c.member(e.Src) != c.member(e.Dst) {
		return 1, true
	}
	return 0, true
}

// Gather implements core.Program.
func (c *Conductance) Gather(dst core.VertexID, v *CondState, m int32) {
	v.Vol++
	v.Cross += m
}

// EndIteration implements core.PhasedProgram: aggregate and stop after the
// single pass.
func (c *Conductance) EndIteration(iter int, sent int64, view core.VertexView[CondState]) bool {
	var cut, volS, volT int64
	view.ForEach(func(id core.VertexID, v *CondState) {
		if c.member(id) {
			volS += int64(v.Vol)
		} else {
			volT += int64(v.Vol)
		}
		cut += int64(v.Cross)
	})
	// Each crossing edge was counted once at its destination; cut size in
	// the undirected sense is handled by the caller's edge representation
	// (undirected graphs store both directions, so cut counts each
	// undirected crossing twice — consistently with vol).
	c.CutEdges = cut
	c.VolS = volS
	c.VolT = volT
	den := volS
	if volT < den {
		den = volT
	}
	if den > 0 {
		c.Phi = float64(cut) / float64(den)
	} else {
		c.Phi = 0
	}
	return true
}
