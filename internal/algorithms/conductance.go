package algorithms

import "repro/internal/core"

// CondState accumulates per-vertex edge counts for conductance.
type CondState struct {
	Vol   int32 // edges arriving at this vertex
	Cross int32 // of which cross the S / not-S cut
}

// Conductance computes the conductance of a vertex subset S in one
// scatter-gather pass: Φ(S) = |cut(S, V∖S)| / min(vol(S), vol(V∖S)).
// Membership is a pure function of the vertex ID, so both endpoints of an
// edge can be classified during scatter without any random access.
type Conductance struct {
	inS func(core.VertexID) bool
	// Result fields, valid after the run.
	Phi                  float64
	CutEdges, VolS, VolT int64
}

// NewConductance measures the subset defined by inS. A nil inS uses the
// odd-ID subset, a deterministic roughly-half split.
func NewConductance(inS func(core.VertexID) bool) *Conductance {
	if inS == nil {
		inS = func(id core.VertexID) bool { return id&1 == 1 }
	}
	return &Conductance{inS: inS}
}

// Name implements core.Program.
func (c *Conductance) Name() string { return "Conductance" }

// Init implements core.Program.
func (c *Conductance) Init(id core.VertexID, v *CondState) {
	v.Vol = 0
	v.Cross = 0
}

// Scatter implements core.Program: every edge sends whether it crosses the
// cut, computable from the two endpoint IDs alone.
func (c *Conductance) Scatter(e core.Edge, src *CondState) (int32, bool) {
	if c.inS(e.Src) != c.inS(e.Dst) {
		return 1, true
	}
	return 0, true
}

// Gather implements core.Program.
func (c *Conductance) Gather(dst core.VertexID, v *CondState, m int32) {
	v.Vol++
	v.Cross += m
}

// EndIteration implements core.PhasedProgram: aggregate and stop after the
// single pass.
func (c *Conductance) EndIteration(iter int, sent int64, view core.VertexView[CondState]) bool {
	var cut, volS, volT int64
	view.ForEach(func(id core.VertexID, v *CondState) {
		if c.inS(id) {
			volS += int64(v.Vol)
		} else {
			volT += int64(v.Vol)
		}
		cut += int64(v.Cross)
	})
	// Each crossing edge was counted once at its destination; cut size in
	// the undirected sense is handled by the caller's edge representation
	// (undirected graphs store both directions, so cut counts each
	// undirected crossing twice — consistently with vol).
	c.CutEdges = cut
	c.VolS = volS
	c.VolT = volT
	den := volS
	if volT < den {
		den = volT
	}
	if den > 0 {
		c.Phi = float64(cut) / float64(den)
	} else {
		c.Phi = 0
	}
	return true
}
