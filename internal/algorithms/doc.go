// Package algorithms implements every graph algorithm from the paper's
// evaluation (§5.2) as an edge-centric scatter-gather Program:
//
//   - WCC     — weakly connected components (min-label propagation)
//   - SCC     — strongly connected components (forward coloring + backward
//     closure, after Salihoglu–Widom)
//   - BFS     — breadth-first search levels
//   - SSSP    — single-source shortest paths (Bellman–Ford relaxation)
//   - MCST    — minimum cost spanning tree (GHS-style Boruvka rounds)
//   - MIS     — maximal independent set (Luby's algorithm)
//   - Cond    — conductance of a vertex subset
//   - SpMV    — sparse matrix–vector multiply
//   - PageRank — damped PageRank, fixed iteration count
//   - ALS     — alternating least squares on a bipartite ratings graph
//   - BP      — loopy belief propagation, two-state MRF
//   - HyperANF — neighbourhood function / diameter estimation via
//     per-vertex HyperLogLog counters (used for Figure 13)
//
// Each program follows the X-Stream contract: all mutable state lives in
// fixed-size pointer-free vertex records, scatter never mutates the source
// vertex, gather is the only place vertex state changes during a phase, and
// cross-vertex aggregation happens in the single-threaded EndIteration hook
// over a streaming VertexView. Every program therefore runs unchanged on
// the in-memory and the out-of-core engine.
//
// Several programs piggyback a "last updated at iteration i" field in
// vertex state so scatter can cheaply decide whether to send — the edges
// that are streamed but produce no update are precisely the paper's
// "wasted edges" (Figure 12b).
//
// The frontier algorithms — BFS, SSSP, WCC — promote that field into the
// core.FrontierProgram contract (Scatter of a vertex that received no
// update is a no-op), which lets engines with Selective enabled skip
// inactive partitions and edge tiles instead of streaming them. The dense
// algorithms (PageRank, SpMV, HyperANF, Conductance, ALS, BP) scatter from
// every vertex each iteration and deliberately do not opt in; the phased
// ones (SCC, MIS, MCST) cannot, because their EndIteration hooks activate
// vertices outside the update stream.
package algorithms
