package algorithms

import (
	"repro/internal/core"
	"repro/internal/hll"
)

// ANFState is per-vertex HyperANF state: a HyperLogLog sketch of the
// vertices within the current radius.
type ANFState struct {
	C       hll.Counter
	Updated int32
}

// HyperANF approximates the neighbourhood function N(t) — the number of
// vertex pairs within distance t — by maintaining a HyperLogLog counter
// per vertex and unioning neighbours' counters each iteration [Boldi,
// Rosa, Vigna]. The number of iterations to convergence is the graph's
// diameter, which is how the paper diagnoses the DIMACS/yahoo-web
// pathology (Figure 13). Run it on an undirected (symmetrized) edge list.
type HyperANF struct {
	iter int32
	// NF records N(t) after each completed iteration; NF[len-1] is the
	// converged neighbourhood function value.
	NF []float64

	new2old func(core.VertexID) core.VertexID
}

// NewHyperANF returns a HyperANF program.
func NewHyperANF() *HyperANF { return &HyperANF{} }

// Name implements core.Program.
func (h *HyperANF) Name() string { return "HyperANF" }

// MapVertices implements core.VertexMapper: sketches hash the input ID,
// so neighbourhood estimates are partitioner-independent.
func (h *HyperANF) MapVertices(_ int64, _, new2old func(core.VertexID) core.VertexID) {
	h.new2old = new2old
}

// Init implements core.Program.
func (h *HyperANF) Init(id core.VertexID, v *ANFState) {
	if h.new2old != nil {
		id = h.new2old(id)
	}
	v.C = hll.Counter{}
	v.C.Add(uint64(id))
	v.Updated = 0
}

// StartIteration implements core.IterationStarter.
func (h *HyperANF) StartIteration(iter int) { h.iter = int32(iter) }

// Scatter implements core.Program: changed counters flow over edges.
func (h *HyperANF) Scatter(e core.Edge, src *ANFState) (hll.Counter, bool) {
	if src.Updated == h.iter {
		return src.C, true
	}
	return hll.Counter{}, false
}

// Gather implements core.Program: union the neighbour's sketch.
func (h *HyperANF) Gather(dst core.VertexID, v *ANFState, m hll.Counter) {
	if v.C.Union(&m) {
		v.Updated = h.iter + 1
	}
}

// Combine implements core.Combiner: sketch union is commutative,
// associative and idempotent, so combined runs are bit-identical to
// uncombined ones.
func (h *HyperANF) Combine(a, b hll.Counter) hll.Counter {
	a.Union(&b)
	return a
}

// EndIteration implements core.PhasedProgram: record N(t); converged when
// no counter changed (sent == 0 next round would also stop, but checking
// the view keeps NF aligned with completed radii).
func (h *HyperANF) EndIteration(iter int, sent int64, view core.VertexView[ANFState]) bool {
	var nf float64
	changed := false
	view.ForEach(func(id core.VertexID, v *ANFState) {
		nf += v.C.Estimate()
		if v.Updated == h.iter+1 {
			changed = true
		}
	})
	h.NF = append(h.NF, nf)
	return !changed
}

// Steps returns the number of steps HyperANF took to cover the graph — the
// paper's Figure 13 metric, an estimate of the diameter.
func (h *HyperANF) Steps() int { return len(h.NF) }

// EffectiveDiameter returns the smallest t at which N(t) reaches the given
// fraction (e.g. 0.9) of its final value.
func (h *HyperANF) EffectiveDiameter(fraction float64) int {
	if len(h.NF) == 0 {
		return 0
	}
	target := fraction * h.NF[len(h.NF)-1]
	for t, v := range h.NF {
		if v >= target {
			return t
		}
	}
	return len(h.NF) - 1
}
