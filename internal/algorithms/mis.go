package algorithms

import "repro/internal/core"

// MIS vertex status values.
const (
	MISUndecided int8 = iota
	MISIn
	MISOut
)

// MISState is per-vertex maximal-independent-set state.
type MISState struct {
	// Priority is this round's random priority.
	Priority float32
	// MinP / MinID track the smallest (priority, id) among undecided
	// neighbours heard from this round.
	MinP  float32
	MinID uint32
	// Status is MISUndecided, MISIn or MISOut.
	Status int8
	// NewIn marks vertices that joined the set this round and must
	// still eliminate their neighbours.
	NewIn int8
}

// MIS computes a maximal independent set with Luby's algorithm. Each round
// costs two scatter-gather iterations: a propose phase in which undecided
// vertices broadcast their random priority and local minima join the set,
// and an eliminate phase in which new members knock out their neighbours.
// Expects an undirected edge list; self-loops are ignored.
type MIS struct {
	phase int // 0 = propose, 1 = eliminate
	round uint64
	// Remaining is the number of undecided vertices after the last
	// completed round.
	Remaining int64

	new2old func(core.VertexID) core.VertexID
}

// NewMIS returns a maximal independent set program.
func NewMIS() *MIS { return &MIS{} }

// Name implements core.Program.
func (m *MIS) Name() string { return "MIS" }

// MapVertices implements core.VertexMapper: priorities are seeded from
// input IDs so the random choices are partitioner-independent. (Priority
// *ties* are still broken on execution IDs in the hot path; under a
// relabeling partitioner a tie between hash-colliding neighbours may
// resolve differently — either resolution is a valid maximal independent
// set.)
func (m *MIS) MapVertices(_ int64, _, new2old func(core.VertexID) core.VertexID) {
	m.new2old = new2old
}

// Init implements core.Program.
func (m *MIS) Init(id core.VertexID, v *MISState) {
	if m.new2old != nil {
		id = m.new2old(id)
	}
	v.Priority = hashUnit(uint64(id), 1)
	v.MinP = Inf32
	v.MinID = ^uint32(0)
	v.Status = MISUndecided
	v.NewIn = 0
}

// StartIteration implements core.IterationStarter.
func (m *MIS) StartIteration(iter int) {
	m.phase = iter % 2
	m.round = uint64(iter / 2)
}

// MISMsg carries a neighbour's priority with its ID as tie-break.
type MISMsg struct {
	P  float32
	ID uint32
}

// Scatter implements core.Program.
func (m *MIS) Scatter(e core.Edge, src *MISState) (MISMsg, bool) {
	if e.Src == e.Dst {
		return MISMsg{}, false // self-loops are irrelevant to independence
	}
	if m.phase == 0 {
		if src.Status == MISUndecided {
			return MISMsg{P: src.Priority, ID: uint32(e.Src)}, true
		}
		return MISMsg{}, false
	}
	if src.NewIn == 1 {
		return MISMsg{}, true // elimination signal; payload unused
	}
	return MISMsg{}, false
}

// Gather implements core.Program.
func (m *MIS) Gather(dst core.VertexID, v *MISState, msg MISMsg) {
	if v.Status != MISUndecided {
		return
	}
	if m.phase == 0 {
		if msg.P < v.MinP || (msg.P == v.MinP && msg.ID < v.MinID) {
			v.MinP = msg.P
			v.MinID = msg.ID
		}
		return
	}
	v.Status = MISOut
}

// EndIteration implements core.PhasedProgram.
func (m *MIS) EndIteration(iter int, sent int64, view core.VertexView[MISState]) bool {
	if m.phase == 0 {
		// Local minima join the set (vertices that heard from no
		// undecided neighbour win by default).
		view.ForEach(func(id core.VertexID, v *MISState) {
			if v.Status != MISUndecided {
				return
			}
			if v.Priority < v.MinP || (v.Priority == v.MinP && uint32(id) <= v.MinID) {
				v.Status = MISIn
				v.NewIn = 1
			}
		})
		return false
	}
	// After elimination: reset round state, draw fresh priorities.
	var undecided int64
	round := m.round
	view.ForEach(func(id core.VertexID, v *MISState) {
		v.NewIn = 0
		v.MinP = Inf32
		v.MinID = ^uint32(0)
		if v.Status == MISUndecided {
			undecided++
			v.Priority = hashUnit(uint64(id), round+2)
		}
	})
	m.Remaining = undecided
	return undecided == 0
}

// InSet extracts the membership vector.
func InSet(verts []MISState) []bool {
	out := make([]bool, len(verts))
	for i := range verts {
		out[i] = verts[i].Status == MISIn
	}
	return out
}
