package algorithms

import "repro/internal/core"

// WCCState is per-vertex weakly-connected-components state.
type WCCState struct {
	// Label is the smallest vertex ID seen in this vertex's component.
	Label core.VertexID
	// Updated is the iteration at which Label last improved; scatter
	// only fires while the label is fresh.
	Updated int32
}

// WCC computes weakly connected components by min-label propagation over
// an undirected edge list (each undirected edge stored as two directed
// records). After convergence every vertex's Label is the minimum vertex
// ID of its component.
type WCC struct {
	iter int32
}

// NewWCC returns a weakly-connected-components program.
func NewWCC() *WCC { return &WCC{} }

// Name implements core.Program.
func (w *WCC) Name() string { return "WCC" }

// Init implements core.Program.
func (w *WCC) Init(id core.VertexID, v *WCCState) {
	v.Label = id
	v.Updated = 0
}

// StartIteration implements core.IterationStarter.
func (w *WCC) StartIteration(iter int) { w.iter = int32(iter) }

// InitiallyActive implements core.FrontierProgram: every vertex starts
// with a fresh label and scatters in iteration 0; afterwards only label
// receivers can improve further, so the converging tail — where most
// labels are settled and most edges are waste — is where selective
// streaming pays off.
func (w *WCC) InitiallyActive(id core.VertexID, v *WCCState) bool { return true }

// Scatter implements core.Program.
func (w *WCC) Scatter(e core.Edge, src *WCCState) (core.VertexID, bool) {
	if src.Updated == w.iter {
		return src.Label, true
	}
	return 0, false
}

// Gather implements core.Program.
func (w *WCC) Gather(dst core.VertexID, v *WCCState, m core.VertexID) {
	if m < v.Label {
		v.Label = m
		v.Updated = w.iter + 1
	}
}

// Combine implements core.Combiner: only the smallest label can improve
// the destination.
func (w *WCC) Combine(a, b core.VertexID) core.VertexID {
	if a < b {
		return a
	}
	return b
}

// RemapState implements core.StateRemapper: labels are vertex IDs, so
// after a relabeled run they are translated back to input IDs. The label
// is then a valid representative of the component (the vertex whose
// execution ID was minimal), though not necessarily the minimum input ID.
func (w *WCC) RemapState(v *WCCState, new2old func(core.VertexID) core.VertexID) {
	v.Label = new2old(v.Label)
}

// Labels extracts the component label of every vertex.
func Labels(verts []WCCState) []core.VertexID {
	out := make([]core.VertexID, len(verts))
	for i := range verts {
		out[i] = verts[i].Label
	}
	return out
}
