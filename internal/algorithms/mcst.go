package algorithms

import (
	"sort"

	"repro/internal/core"
)

// MCSTState is per-vertex minimum-spanning-tree state.
type MCSTState struct {
	// Comp is the vertex's current component label.
	Comp uint32
	// Best* record the lightest crossing edge any neighbour offered this
	// round: its weight, the offering component, and the edge endpoints.
	BestW    float32
	BestComp uint32
	BestA    uint32
	BestB    uint32
}

// MSTEdge is an edge selected into the spanning forest.
type MSTEdge struct {
	A, B   core.VertexID
	Weight float32
}

// MCST computes a minimum cost spanning forest with GHS-style Boruvka
// rounds, the algorithm the paper attributes to Gallager–Humblet–Spira
// (§5.2). Each round is one scatter-gather iteration: every edge carries
// its source's component label to its destination; destinations keep the
// lightest edge arriving from a foreign component; the round hook then
// picks each component's minimum outgoing edge, merges components along
// the chosen edges (hook + compress), and relabels. The number of rounds
// is O(log V). Expects an undirected edge list.
//
// Ties are broken on (weight, A, B) so equal-weight graphs cannot create
// merge cycles.
type MCST struct {
	// Edges is the spanning forest after the run, endpoints in input IDs.
	Edges []MSTEdge
	// TotalWeight is the forest's total weight.
	TotalWeight float64

	new2old func(core.VertexID) core.VertexID
}

// NewMCST returns a minimum cost spanning tree program.
func NewMCST() *MCST { return &MCST{} }

// Name implements core.Program.
func (m *MCST) Name() string { return "MCST" }

// MapVertices implements core.VertexMapper: forest edges are reported in
// input IDs whatever relabeling the partitioner applied.
func (m *MCST) MapVertices(_ int64, _, new2old func(core.VertexID) core.VertexID) {
	m.new2old = new2old
}

// RemapState implements core.StateRemapper: component labels are vertex
// IDs, translated back to input IDs so each vertex's Comp names a real
// input vertex of its tree.
func (m *MCST) RemapState(v *MCSTState, new2old func(core.VertexID) core.VertexID) {
	v.Comp = uint32(new2old(core.VertexID(v.Comp)))
}

// origID translates an execution ID back to the input ID space.
func (m *MCST) origID(v core.VertexID) core.VertexID {
	if m.new2old != nil {
		return m.new2old(v)
	}
	return v
}

// Init implements core.Program.
func (m *MCST) Init(id core.VertexID, v *MCSTState) {
	v.Comp = uint32(id)
	v.BestW = Inf32
}

// MCSTMsg offers a crossing edge to the destination's component.
type MCSTMsg struct {
	W    float32
	Comp uint32 // source's component
	A, B uint32 // edge endpoints as stored
}

// Scatter implements core.Program.
func (m *MCST) Scatter(e core.Edge, src *MCSTState) (MCSTMsg, bool) {
	if e.Src == e.Dst {
		return MCSTMsg{}, false
	}
	return MCSTMsg{W: e.Weight, Comp: src.Comp, A: uint32(e.Src), B: uint32(e.Dst)}, true
}

// Gather implements core.Program.
func (m *MCST) Gather(dst core.VertexID, v *MCSTState, msg MCSTMsg) {
	if msg.Comp == v.Comp {
		return // internal edge
	}
	if msg.W < v.BestW ||
		(msg.W == v.BestW && (msg.A < v.BestA || (msg.A == v.BestA && msg.B < v.BestB))) {
		v.BestW = msg.W
		v.BestComp = msg.Comp
		v.BestA = msg.A
		v.BestB = msg.B
	}
}

// EndIteration implements core.PhasedProgram: per-component minimum edge
// selection, hook, compress, relabel.
func (m *MCST) EndIteration(iter int, sent int64, view core.VertexView[MCSTState]) bool {
	type cand struct {
		w    float32
		a, b uint32
		to   uint32 // component on the other side
	}
	best := make(map[uint32]cand)
	view.ForEach(func(id core.VertexID, v *MCSTState) {
		if v.BestW == Inf32 {
			return
		}
		c, ok := best[v.Comp]
		if !ok || v.BestW < c.w ||
			(v.BestW == c.w && (v.BestA < c.a || (v.BestA == c.a && v.BestB < c.b))) {
			best[v.Comp] = cand{w: v.BestW, a: v.BestA, b: v.BestB, to: v.BestComp}
		}
	})
	if len(best) == 0 {
		m.finalize()
		return true
	}

	// Hook: union components along chosen edges; dedupe edges picked from
	// both sides.
	parent := make(map[uint32]uint32, 2*len(best))
	var find func(uint32) uint32
	find = func(x uint32) uint32 {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	type ekey struct{ a, b uint32 }
	chosen := make(map[ekey]MSTEdge, len(best))
	// Deterministic iteration order for reproducible forests.
	comps := make([]uint32, 0, len(best))
	for c := range best {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	for _, c := range comps {
		e := best[c]
		ra, rb := find(c), find(e.to)
		k := ekey{a: e.a, b: e.b}
		if e.b < e.a {
			k = ekey{a: e.b, b: e.a}
		}
		if _, dup := chosen[k]; !dup {
			if ra != rb {
				chosen[k] = MSTEdge{A: m.origID(core.VertexID(e.a)), B: m.origID(core.VertexID(e.b)), Weight: e.w}
				parent[ra] = rb
			}
		}
	}
	for _, e := range chosen {
		m.Edges = append(m.Edges, e)
	}

	// Compress + relabel vertices; reset round state.
	view.ForEach(func(id core.VertexID, v *MCSTState) {
		v.Comp = find(v.Comp)
		v.BestW = Inf32
		v.BestComp = 0
		v.BestA = 0
		v.BestB = 0
	})
	return false
}

func (m *MCST) finalize() {
	m.TotalWeight = 0
	for _, e := range m.Edges {
		m.TotalWeight += float64(e.Weight)
	}
}
