package algorithms

import (
	"math"

	"repro/internal/core"
)

// bpEpsilon is the edge-potential off-diagonal: neighbouring vertices
// agree with probability 1-ε (a homophily prior, as in the belief
// propagation over billion-scale graphs the paper cites [35]).
const bpEpsilon = 0.1

// BPState is per-vertex belief-propagation state for a two-state MRF.
type BPState struct {
	B0, B1     float32 // current (normalized) belief
	Acc0, Acc1 float32 // log-domain message accumulators for this round
	Prior1     float32 // prior probability of state 1
}

// BPMsg is the two-state message along an edge.
type BPMsg struct {
	M0, M1 float32
}

// BP runs loopy belief propagation for a fixed number of iterations on a
// pairwise two-state Markov random field over the graph. Each iteration
// every vertex broadcasts ψ·b over its edges and re-estimates its belief
// from its prior and the product of incoming messages (computed stably in
// the log domain).
type BP struct {
	iters   int
	new2old func(core.VertexID) core.VertexID
}

// NewBP returns a belief propagation program running iters iterations
// (the paper uses 5).
func NewBP(iters int) *BP {
	if iters < 1 {
		iters = 1
	}
	return &BP{iters: iters}
}

// Name implements core.Program.
func (b *BP) Name() string { return "BP" }

// MapVertices implements core.VertexMapper: priors are seeded from input
// IDs so beliefs are partitioner-independent.
func (b *BP) MapVertices(_ int64, _, new2old func(core.VertexID) core.VertexID) {
	b.new2old = new2old
}

// Init implements core.Program: priors are a deterministic pseudo-random
// function of the input vertex ID, mimicking observed evidence.
func (b *BP) Init(id core.VertexID, v *BPState) {
	if b.new2old != nil {
		id = b.new2old(id)
	}
	p1 := 0.3 + 0.4*hashUnit(uint64(id), 17)
	v.Prior1 = p1
	v.B0 = 1 - p1
	v.B1 = p1
	v.Acc0 = 0
	v.Acc1 = 0
}

// Scatter implements core.Program.
func (b *BP) Scatter(e core.Edge, src *BPState) (BPMsg, bool) {
	return BPMsg{
		M0: (1-bpEpsilon)*src.B0 + bpEpsilon*src.B1,
		M1: bpEpsilon*src.B0 + (1-bpEpsilon)*src.B1,
	}, true
}

// Gather implements core.Program: accumulate log messages.
func (b *BP) Gather(dst core.VertexID, v *BPState, m BPMsg) {
	v.Acc0 += float32(math.Log(float64(m.M0)))
	v.Acc1 += float32(math.Log(float64(m.M1)))
}

// EndIteration implements core.PhasedProgram: fold messages into beliefs.
func (b *BP) EndIteration(iter int, sent int64, view core.VertexView[BPState]) bool {
	view.ForEach(func(id core.VertexID, v *BPState) {
		l0 := float64(v.Acc0) + math.Log(float64(1-v.Prior1))
		l1 := float64(v.Acc1) + math.Log(float64(v.Prior1))
		// Normalize stably via max subtraction.
		mx := l0
		if l1 > mx {
			mx = l1
		}
		e0 := math.Exp(l0 - mx)
		e1 := math.Exp(l1 - mx)
		z := e0 + e1
		v.B0 = float32(e0 / z)
		v.B1 = float32(e1 / z)
		v.Acc0 = 0
		v.Acc1 = 0
	})
	return iter+1 >= b.iters
}

// Beliefs extracts per-vertex probability of state 1.
func Beliefs(verts []BPState) []float32 {
	out := make([]float32, len(verts))
	for i := range verts {
		out[i] = verts[i].B1
	}
	return out
}
