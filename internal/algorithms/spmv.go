package algorithms

import "repro/internal/core"

// SpMVState holds one input and one output vector element.
type SpMVState struct {
	X float32 // input vector element
	Y float32 // output vector element
}

// SpMV multiplies the weighted adjacency matrix with a vector in a single
// scatter-gather iteration: y[dst] = Σ over edges (src,dst,w) of w·x[src].
type SpMV struct {
	new2old func(core.VertexID) core.VertexID
}

// NewSpMV returns a sparse matrix–vector multiply program. The input
// vector is a deterministic pseudo-random function of the vertex ID, as
// in the paper's benchmark setup.
func NewSpMV() *SpMV { return &SpMV{} }

// Name implements core.Program.
func (s *SpMV) Name() string { return "SpMV" }

// MapVertices implements core.VertexMapper: the x vector is seeded from
// input IDs so the product is partitioner-independent.
func (s *SpMV) MapVertices(_ int64, _, new2old func(core.VertexID) core.VertexID) {
	s.new2old = new2old
}

// Init implements core.Program.
func (s *SpMV) Init(id core.VertexID, v *SpMVState) {
	if s.new2old != nil {
		id = s.new2old(id)
	}
	v.X = hashUnit(uint64(id), 0xABCD)
	v.Y = 0
}

// Scatter implements core.Program.
func (s *SpMV) Scatter(e core.Edge, src *SpMVState) (float32, bool) {
	return src.X * e.Weight, true
}

// Gather implements core.Program.
func (s *SpMV) Gather(dst core.VertexID, v *SpMVState, m float32) {
	v.Y += m
}

// Combine implements core.Combiner: partial products sum.
func (s *SpMV) Combine(a, b float32) float32 { return a + b }

// EndIteration implements core.PhasedProgram: SpMV is a single pass.
func (s *SpMV) EndIteration(iter int, sent int64, view core.VertexView[SpMVState]) bool {
	return true
}

// hashUnit maps (x, salt) to a deterministic pseudo-random float in [0,1).
func hashUnit(x, salt uint64) float32 {
	h := x*0x9E3779B97F4A7C15 + salt
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return float32(h>>40) / float32(1<<24)
}
