package algorithms

import "repro/internal/core"

// BFSState is per-vertex breadth-first-search state.
type BFSState struct {
	// Dist is the hop distance from the root, or -1 if undiscovered.
	Dist int32
	// Updated is the iteration at which the vertex was discovered.
	Updated int32
}

// BFS computes hop distances from a root vertex. Each scatter-gather
// iteration advances the frontier by one level, so the iteration count
// equals the eccentricity of the root — the property that makes
// high-diameter graphs X-Stream's worst case (§5.3).
type BFS struct {
	root core.VertexID // as constructed, in input ID space
	cur  core.VertexID // root in this run's execution ID space
	iter int32
}

// NewBFS returns a breadth-first search from root.
func NewBFS(root core.VertexID) *BFS { return &BFS{root: root, cur: root} }

// Name implements core.Program.
func (b *BFS) Name() string { return "BFS" }

// MapVertices implements core.VertexMapper: the root moves with the
// partitioner's relabeling.
func (b *BFS) MapVertices(_ int64, old2new, _ func(core.VertexID) core.VertexID) {
	b.cur = old2new(b.root)
}

// Init implements core.Program.
func (b *BFS) Init(id core.VertexID, v *BFSState) {
	if id == b.cur {
		v.Dist = 0
		v.Updated = 0
	} else {
		v.Dist = -1
		v.Updated = -1
	}
}

// StartIteration implements core.IterationStarter.
func (b *BFS) StartIteration(iter int) { b.iter = int32(iter) }

// InitiallyActive implements core.FrontierProgram: only the root can
// scatter in iteration 0, and Scatter fires only for vertices discovered
// in the previous iteration — exactly the frontier contract, making BFS
// the canonical beneficiary of selective streaming on high-diameter
// graphs (the paper's §5.3 worst case).
func (b *BFS) InitiallyActive(id core.VertexID, v *BFSState) bool { return id == b.cur }

// Scatter implements core.Program.
func (b *BFS) Scatter(e core.Edge, src *BFSState) (int32, bool) {
	if src.Updated == b.iter {
		return src.Dist + 1, true
	}
	return 0, false
}

// Gather implements core.Program.
func (b *BFS) Gather(dst core.VertexID, v *BFSState, m int32) {
	if v.Dist < 0 {
		v.Dist = m
		v.Updated = b.iter + 1
	}
}

// Combine implements core.Combiner: within one iteration every update
// carries the same frontier depth, so min is exact (and trivially so).
func (b *BFS) Combine(a, m int32) int32 {
	if a < m {
		return a
	}
	return m
}

// Levels extracts per-vertex hop distances (-1 = unreachable).
func Levels(verts []BFSState) []int32 {
	out := make([]int32, len(verts))
	for i := range verts {
		out[i] = verts[i].Dist
	}
	return out
}
