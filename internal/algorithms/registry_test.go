package algorithms

import (
	"encoding/json"
	"testing"
)

// TestRegistryConstructsAll: every registered algorithm builds an instance
// from default-ish params, exposes a job with sane record sizes, and its
// renderers produce output (run on a tiny in-memory result where cheap).
func TestRegistryConstructsAll(t *testing.T) {
	if len(Names()) != 12 {
		t.Fatalf("registry has %d algorithms, want 12", len(Names()))
	}
	for _, name := range Names() {
		spec, ok := ByName(name)
		if !ok || spec.Name != name {
			t.Fatalf("ByName(%q) broken", name)
		}
		p := Params{Root: 1, Iters: 2}
		if name == "als" {
			// Required parameter: constructing without it must fail loudly.
			if _, err := spec.New(Params{}); err == nil {
				t.Fatal("als accepted zero users")
			}
			p.Users = 4
		}
		inst, err := spec.New(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if inst.Job == nil || inst.Job.Name() == "" {
			t.Fatalf("%s: no job", name)
		}
		if inst.Job.VertexBytes() <= 0 || inst.Job.UpdateBytes() <= 0 {
			t.Fatalf("%s: zero record sizes", name)
		}
		if err := inst.Job.Check(); err != nil {
			t.Fatalf("%s: pod check: %v", name, err)
		}
		if est := inst.Job.MemoryEstimate(100, 1000); est <= 0 {
			t.Fatalf("%s: estimate %d", name, est)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown algorithm resolved")
	}
}

// TestResultPayloadsEncode: the serving payloads must be JSON-encodable
// (no NaN/Inf), including SSSP's unreachable-vertex distances.
func TestResultPayloadsEncode(t *testing.T) {
	spec, _ := ByName("sssp")
	inst, err := spec.New(Params{Root: 0})
	if err != nil {
		t.Fatal(err)
	}
	verts := make([]SSSPState, 3)
	for i := range verts {
		verts[i] = SSSPState{Dist: Inf32}
	}
	verts[0].Dist = 0
	payload := inst.Result(verts)
	buf, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("sssp payload not encodable: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["reached"].(float64) != 1 {
		t.Fatalf("payload: %v", decoded)
	}
}
