package hll

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 100000} {
		var c Counter
		for i := 0; i < n; i++ {
			c.Add(uint64(i) * 2654435761)
		}
		got := c.Estimate()
		relErr := math.Abs(got-float64(n)) / float64(n)
		// 1.04/sqrt(64) ≈ 13% standard error; allow 4 sigma.
		if relErr > 0.52 {
			t.Fatalf("n=%d: estimate %.0f, rel err %.2f", n, got, relErr)
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	var a, b Counter
	for i := 0; i < 50; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i))
		b.Add(uint64(i)) // duplicates must not change the sketch
	}
	if a != b {
		t.Fatal("duplicate Add changed the counter")
	}
}

func TestUnionProperties(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		var a, b, both Counter
		for _, x := range xs {
			a.Add(x)
			both.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			both.Add(y)
		}
		u := a
		u.Union(&b)
		// Union equals the sketch of the union of the sets.
		if u != both {
			return false
		}
		// Union is monotone: unioning again changes nothing.
		if u.Union(&b) || u.Union(&a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionChangeDetection(t *testing.T) {
	var a, b Counter
	a.Add(1)
	b.Add(99999)
	if !a.Union(&b) {
		t.Fatal("union with new element reported no change")
	}
	if a.Union(&b) {
		t.Fatal("second union reported change")
	}
}

func TestEmptyEstimate(t *testing.T) {
	var c Counter
	if got := c.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %f", got)
	}
}
