// Package hll implements the fixed-size HyperLogLog counters that
// HyperANF [Boldi, Rosa, Vigna] maintains per vertex to approximate the
// neighbourhood function of a graph (paper §5.3, Figure 13).
//
// Counters are plain 64-byte arrays so they can live directly in vertex
// state and be streamed as updates by either engine.
package hll

import "math"

// Registers is the register count m (2^6). The relative standard error of
// the estimate is ~1.04/sqrt(m) ≈ 13%.
const Registers = 64

const registerBits = 6 // log2(Registers)

// Counter is a HyperLogLog sketch of a set of vertex IDs.
type Counter [Registers]uint8

// alpha is the bias-correction constant for m = 64.
var alpha = 0.709

// hash64 is SplitMix64, a well-distributed 64-bit mixer.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Add inserts an element.
func (c *Counter) Add(x uint64) {
	h := hash64(x)
	reg := h & (Registers - 1)
	rest := h >> registerBits
	// rank = position of first 1 bit (1-based), over the remaining 58 bits.
	rank := uint8(1)
	for rest&1 == 0 && rank < 64-registerBits {
		rank++
		rest >>= 1
	}
	if rank > c[reg] {
		c[reg] = rank
	}
}

// Union merges other into c, reporting whether c changed. Union is the
// gather operation of HyperANF: a vertex's sketch absorbs its neighbours'.
func (c *Counter) Union(other *Counter) bool {
	changed := false
	for i := range c {
		if other[i] > c[i] {
			c[i] = other[i]
			changed = true
		}
	}
	return changed
}

// Estimate returns the approximate cardinality.
func (c *Counter) Estimate() float64 {
	sum := 0.0
	zeros := 0
	for _, r := range c {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha * Registers * Registers / sum
	// Small-range correction: linear counting.
	if e <= 2.5*Registers && zeros > 0 {
		e = Registers * math.Log(float64(Registers)/float64(zeros))
	}
	return e
}
