package tilecodec

import (
	"math"
	"testing"

	"repro/internal/core"
)

// FuzzDecodeTile fuzzes the tile decoder: whatever the input bytes —
// malformed headers, truncated payloads, overflowing varints, hostile
// length fields — Decode must either return a clean error or a well-formed
// batch, never panic, never over-read, and never mis-decode: anything it
// accepts must survive a re-encode/re-decode round trip bit-identically.
// Seed cases cover valid tiles of both encodings plus the malformed shapes
// we know about; the checked-in corpus under testdata/fuzz/FuzzDecodeTile
// adds regression inputs.
func FuzzDecodeTile(f *testing.F) {
	var enc Encoder
	small, _, _ := enc.Encode(nil, []core.Edge{
		{Src: 1, Dst: 2, Weight: 0.5}, {Src: 3, Dst: 4, Weight: 0.5},
	})
	clustered := make([]core.Edge, 64)
	for i := range clustered {
		clustered[i] = core.Edge{Src: core.VertexID(100 + i%7), Dst: core.VertexID(i * 31), Weight: float32(i)}
	}
	delta, _, _ := enc.Encode(nil, clustered)
	sparse := []core.Edge{{Src: 0, Dst: math.MaxUint32, Weight: float32(math.NaN())}, {Src: math.MaxUint32, Dst: 0}}
	raw, _, _ := enc.Encode(nil, sparse)

	seeds := [][]byte{
		{},
		{FlagDelta},
		{FlagRaw, 0x01, 0x0c}, // raw header, payload missing
		{FlagDelta, 0xff, 0xff, 0xff, 0xff, 0x7f}, // record count overflows the cap
		{0x42, 0x01, 0x00},                        // unknown flag
		{FlagDelta, 0x01, 0x01, 0x80},             // unterminated varint payload
		small, delta, raw,
		small[:len(small)-1], delta[:3], raw[:5], // truncations
		append(append([]byte{}, small...), 0xff), // trailing byte after a valid tile
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, consumed, err := Decode(data, nil)
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		if consumed <= 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if len(edges) == 0 || len(edges) > MaxTileRecs {
			t.Fatalf("accepted a tile of %d records", len(edges))
		}
		// Anything accepted must re-encode into a tile that decodes back to
		// the same records — the codec's canonical-form invariant. (The
		// bytes themselves may differ: a hand-built raw tile of compressible
		// records re-encodes as delta.)
		var enc Encoder
		re, _, err := enc.Encode(nil, edges)
		if err != nil {
			t.Fatalf("re-encode of accepted tile: %v", err)
		}
		again, n2, err := Decode(re, nil)
		if err != nil {
			t.Fatalf("re-decode of own output: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip: %d records, want %d", len(again), len(edges))
		}
		for i := range edges {
			a, b := again[i], edges[i]
			if a.Src != b.Src || a.Dst != b.Dst ||
				math.Float32bits(a.Weight) != math.Float32bits(b.Weight) {
				t.Fatalf("record %d: %+v != %+v", i, a, b)
			}
		}
		// Decode must not have read past what it claims to have consumed:
		// re-decoding the consumed prefix alone must succeed identically.
		if _, n3, err := Decode(data[:consumed], nil); err != nil || n3 != consumed {
			t.Fatalf("prefix re-decode: consumed %d err %v, want %d nil", n3, err, consumed)
		}
	})
}
