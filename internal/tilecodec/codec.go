// Package tilecodec implements the compressed on-disk edge-tile format of
// the out-of-core engine. X-Stream's design bet is that graph processing is
// bound by streaming bandwidth, not seeks (paper §5): every byte shaved off
// the edge stream is a direct speedup on every out-of-core iteration, so the
// partition edge files written by the pre-processing shuffle can trade a
// little decode CPU for fewer physical bytes on the device.
//
// One tile encodes one fixed-size run of edge records (the unit the
// selective-streaming index already summarizes with a [min,max] source
// span). The wire format is
//
//	[1 byte flags][uvarint n][uvarint payloadLen][payload][crc32c]
//
// where the trailing 4-byte little-endian CRC32C of the payload is present
// iff the FlagCRC bit is set (the encoder always sets it; tiles written
// before the checksum layer decode unchanged), and the low flag bits
// select the payload encoding:
//
//   - FlagDelta: three columnar streams — n signed-varint source deltas
//     (zigzag, wrapping uint32 arithmetic, previous source starts at 0),
//     then n uvarint destinations, then a 1-byte weight mode followed by
//     either one float32 (every weight in the tile is bit-identical) or n
//     raw little-endian float32s. Source deltas are what the 2PS
//     relabeling's locality pays into: a partition packs communities into
//     contiguous ID ranges, so consecutive records in a shuffled run land
//     near each other and deltas fit in one or two bytes.
//   - FlagRaw: n 12-byte little-endian records, verbatim. The encoder
//     falls back to raw whenever the delta payload would not be smaller,
//     so a tile is never larger than its raw form plus the fixed header.
//
// Encoding preserves record order exactly — a decoded tile is
// bit-identical to the batch that was encoded, weights included — so
// compression is invisible to everything above the reader: scatter order,
// update order and therefore all results are unchanged.
//
// Decode is hardened against malformed input: truncated headers, length
// mismatches, varints that overflow 32 bits, record counts beyond
// MaxTileRecs and trailing payload garbage all return errors, never panic
// (the FuzzDecodeTile target pins this).
package tilecodec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/storage"
)

// Payload encodings, stored in the tile header's flag byte.
const (
	// FlagRaw marks a tile stored as verbatim 12-byte records — the
	// fallback when delta encoding would not shrink the payload.
	FlagRaw = 0x00
	// FlagDelta marks a delta-varint encoded tile.
	FlagDelta = 0x01
	// FlagCRC is OR'd into either encoding when a 4-byte CRC32C of the
	// payload trails the tile. Encode always sets it; Decode accepts
	// tiles without it (pre-checksum artifacts) and verifies when
	// present.
	FlagCRC = 0x02
)

// Weight-block modes inside a FlagDelta payload.
const (
	weightConst = 0x00 // one float32, shared by every record
	weightRaw   = 0x01 // n raw little-endian float32s
)

// MaxTileRecs bounds the record count a tile header may claim — far above
// any real tile granularity, low enough that a malformed header cannot
// drive a huge allocation.
const MaxTileRecs = 1 << 22

// EdgeBytes is the raw on-disk size of one edge record.
const EdgeBytes = 12

// Encoder encodes tiles, reusing an internal scratch buffer across calls.
// Not safe for concurrent use; the shuffle's single writer goroutine owns
// one.
type Encoder struct {
	scratch []byte
}

// Encode appends one encoded tile for edges to dst and returns the extended
// slice, plus whether the delta encoding was used (false means the raw
// fallback). Encoding an empty batch is an error: the shuffle never writes
// empty tiles, and rejecting them keeps the decoder's "n must be positive"
// check an invariant rather than a special case.
func (e *Encoder) Encode(dst []byte, edges []core.Edge) ([]byte, bool, error) {
	n := len(edges)
	if n == 0 {
		return dst, false, fmt.Errorf("tilecodec: encode of an empty tile")
	}
	if n > MaxTileRecs {
		return dst, false, fmt.Errorf("tilecodec: tile of %d records exceeds the %d cap", n, MaxTileRecs)
	}

	body := e.scratch[:0]
	// Source deltas: zigzag varints over wrapping uint32 arithmetic, so any
	// source sequence — ascending, descending, wrapping — round-trips.
	prev := uint32(0)
	for _, ed := range edges {
		body = binary.AppendVarint(body, int64(int32(uint32(ed.Src)-prev)))
		prev = uint32(ed.Src)
	}
	for _, ed := range edges {
		body = binary.AppendUvarint(body, uint64(ed.Dst))
	}
	// Weight block: generated graphs often carry one shared weight; detect
	// it by bit pattern (value equality would conflate +0/-0 and miss NaN).
	wbits := math.Float32bits(edges[0].Weight)
	allSame := true
	for _, ed := range edges[1:] {
		if math.Float32bits(ed.Weight) != wbits {
			allSame = false
			break
		}
	}
	if allSame {
		body = append(body, weightConst)
		body = binary.LittleEndian.AppendUint32(body, wbits)
	} else {
		body = append(body, weightRaw)
		for _, ed := range edges {
			body = binary.LittleEndian.AppendUint32(body, math.Float32bits(ed.Weight))
		}
	}
	e.scratch = body

	raw := len(body) >= n*EdgeBytes
	flag := byte(FlagDelta | FlagCRC)
	plen := len(body)
	if raw {
		flag, plen = FlagRaw|FlagCRC, n*EdgeBytes
	}
	dst = append(dst, flag)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(plen))
	payloadStart := len(dst)
	if raw {
		for _, ed := range edges {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(ed.Src))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(ed.Dst))
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(ed.Weight))
		}
	} else {
		dst = append(dst, body...)
	}
	crc := storage.Checksum(dst[payloadStart:])
	return binary.LittleEndian.AppendUint32(dst, crc), !raw, nil
}

// Decode reads one tile from the front of data into out (grown if too
// small, reused otherwise) and returns the decoded records, the number of
// bytes consumed, and an error for any malformed, truncated or overflowing
// input. Tiles carrying FlagCRC are checksum-verified; a mismatch wraps
// storage.ErrCorrupted. On success the decoded batch is bit-identical to
// what Encode was given, in the same order.
func Decode(data []byte, out []core.Edge) ([]core.Edge, int, error) {
	return DecodeVerify(data, out, true)
}

// DecodeVerify is Decode with checksum verification switchable: verify
// false skips the CRC comparison (the measured-overhead ablation) while
// still consuming the CRC bytes, so framing is identical either way.
func DecodeVerify(data []byte, out []core.Edge, verify bool) ([]core.Edge, int, error) {
	if len(data) < 3 {
		return nil, 0, fmt.Errorf("tilecodec: tile header truncated: %d bytes", len(data))
	}
	flag := data[0] &^ FlagCRC
	hasCRC := data[0]&FlagCRC != 0
	if flag != FlagRaw && flag != FlagDelta {
		return nil, 0, fmt.Errorf("tilecodec: unknown tile flag 0x%02x", data[0])
	}
	pos := 1
	n64, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("tilecodec: malformed record count")
	}
	pos += k
	if n64 == 0 || n64 > MaxTileRecs {
		return nil, 0, fmt.Errorf("tilecodec: record count %d outside (0, %d]", n64, MaxTileRecs)
	}
	n := int(n64)
	plen64, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("tilecodec: malformed payload length")
	}
	pos += k
	avail := uint64(len(data) - pos)
	trailer := uint64(0)
	if hasCRC {
		trailer = 4
	}
	if plen64 > avail || plen64+trailer > avail {
		return nil, 0, fmt.Errorf("tilecodec: payload truncated: header claims %d bytes, %d available", plen64+trailer, avail)
	}
	payload := data[pos : pos+int(plen64)]
	end := pos + int(plen64+trailer)
	if hasCRC && verify {
		want := binary.LittleEndian.Uint32(data[pos+int(plen64):])
		if got := storage.Checksum(payload); got != want {
			return nil, 0, fmt.Errorf("tilecodec: tile payload checksum %08x, want %08x: %w",
				got, want, storage.ErrCorrupted)
		}
	}

	if cap(out) < n {
		out = make([]core.Edge, n)
	}
	out = out[:n]

	if flag == FlagRaw {
		if len(payload) != n*EdgeBytes {
			return nil, 0, fmt.Errorf("tilecodec: raw payload of %d bytes for %d records", len(payload), n)
		}
		for i := range out {
			rec := payload[i*EdgeBytes:]
			out[i] = core.Edge{
				Src:    core.VertexID(binary.LittleEndian.Uint32(rec)),
				Dst:    core.VertexID(binary.LittleEndian.Uint32(rec[4:])),
				Weight: math.Float32frombits(binary.LittleEndian.Uint32(rec[8:])),
			}
		}
		return out, end, nil
	}

	q := 0
	prev := uint32(0)
	for i := range out {
		d, k := binary.Varint(payload[q:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("tilecodec: malformed source delta at record %d", i)
		}
		if d < math.MinInt32 || d > math.MaxInt32 {
			return nil, 0, fmt.Errorf("tilecodec: source delta %d overflows 32 bits at record %d", d, i)
		}
		q += k
		prev += uint32(int32(d))
		out[i].Src = core.VertexID(prev)
	}
	for i := range out {
		v, k := binary.Uvarint(payload[q:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("tilecodec: malformed destination at record %d", i)
		}
		if v > math.MaxUint32 {
			return nil, 0, fmt.Errorf("tilecodec: destination %d overflows 32 bits at record %d", v, i)
		}
		q += k
		out[i].Dst = core.VertexID(v)
	}
	if q >= len(payload) {
		return nil, 0, fmt.Errorf("tilecodec: weight block missing")
	}
	switch payload[q] {
	case weightConst:
		q++
		if len(payload)-q < 4 {
			return nil, 0, fmt.Errorf("tilecodec: constant weight truncated")
		}
		w := math.Float32frombits(binary.LittleEndian.Uint32(payload[q:]))
		q += 4
		for i := range out {
			out[i].Weight = w
		}
	case weightRaw:
		q++
		if len(payload)-q < n*4 {
			return nil, 0, fmt.Errorf("tilecodec: weight block of %d bytes for %d records", len(payload)-q, n)
		}
		for i := range out {
			out[i].Weight = math.Float32frombits(binary.LittleEndian.Uint32(payload[q+4*i:]))
		}
		q += n * 4
	default:
		return nil, 0, fmt.Errorf("tilecodec: unknown weight mode 0x%02x", payload[q])
	}
	if q != len(payload) {
		return nil, 0, fmt.Errorf("tilecodec: %d bytes of trailing garbage in tile payload", len(payload)-q)
	}
	return out, end, nil
}
