package tilecodec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

// sameEdges compares batches bit-wise: weights by bit pattern, so NaN and
// the -0/+0 distinction are preserved exactly.
func sameEdges(t *testing.T, got, want []core.Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Src != w.Src || g.Dst != w.Dst || math.Float32bits(g.Weight) != math.Float32bits(w.Weight) {
			t.Fatalf("record %d: %+v (w=%#x) != %+v (w=%#x)", i,
				g, math.Float32bits(g.Weight), w, math.Float32bits(w.Weight))
		}
	}
}

// roundTrip encodes edges, decodes the result, and checks identity plus
// exact consumption. Returns whether the delta encoding was used.
func roundTrip(t *testing.T, edges []core.Edge) bool {
	t.Helper()
	var enc Encoder
	buf, compressed, err := enc.Encode(nil, edges)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, consumed, err := Decode(buf, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if consumed != len(buf) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(buf))
	}
	sameEdges(t, got, edges)
	return compressed
}

func TestRoundTripShapes(t *testing.T) {
	cases := map[string][]core.Edge{
		"single":     {{Src: 7, Dst: 9, Weight: 0.25}},
		"ascending":  {{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}},
		"descending": {{Src: 100, Dst: 1}, {Src: 50, Dst: 2}, {Src: 0, Dst: 3}},
		"same-src":   {{Src: 5, Dst: 1}, {Src: 5, Dst: 2}, {Src: 5, Dst: 3}},
		"max-ids":    {{Src: math.MaxUint32, Dst: math.MaxUint32, Weight: 1}, {Src: 0, Dst: 0}},
		"wrap-delta": {{Src: 0, Dst: 1}, {Src: math.MaxUint32, Dst: 2}, {Src: 1, Dst: 3}},
		"nan-weight": {{Src: 1, Dst: 2, Weight: float32(math.NaN())}, {Src: 2, Dst: 3, Weight: 1}},
		"neg-zero":   {{Src: 1, Dst: 2, Weight: float32(math.Copysign(0, -1))}, {Src: 2, Dst: 3, Weight: 0}},
		"inf-weight": {{Src: 1, Dst: 2, Weight: float32(math.Inf(1))}, {Src: 2, Dst: 3, Weight: float32(math.Inf(-1))}},
	}
	for name, edges := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, edges) })
	}
}

// TestRoundTripRandom is the encode∘decode = id property over random
// batches of every shape: clustered sources (the 2PS-relabeled case),
// uniform 32-bit sources (the adversarial case that triggers the raw
// fallback), constant and random weights.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5000)
		edges := make([]core.Edge, n)
		clustered := trial%2 == 0
		constW := trial%3 == 0
		base := rng.Uint32()
		for i := range edges {
			if clustered {
				edges[i].Src = core.VertexID(base + uint32(rng.Intn(512)))
			} else {
				edges[i].Src = core.VertexID(rng.Uint32())
			}
			edges[i].Dst = core.VertexID(rng.Uint32() >> uint(rng.Intn(33)))
			if constW {
				edges[i].Weight = 0.5
			} else {
				edges[i].Weight = rng.Float32()
			}
		}
		roundTrip(t, edges)
	}
}

// TestCompressionPays pins the point of the codec: on a locality-packed
// batch (small source deltas, bounded destinations — what a 2PS-relabeled
// shuffle run looks like) the encoded tile must be well under the raw
// size, and the encoder must report the delta encoding.
func TestCompressionPays(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges := make([]core.Edge, 4096)
	for i := range edges {
		edges[i] = core.Edge{
			Src:    core.VertexID(1000 + rng.Intn(256)),
			Dst:    core.VertexID(rng.Intn(1 << 14)),
			Weight: rng.Float32(),
		}
	}
	var enc Encoder
	buf, compressed, err := enc.Encode(nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !compressed {
		t.Fatalf("locality-packed tile fell back to raw")
	}
	raw := len(edges) * EdgeBytes
	if len(buf) > raw*7/10 {
		t.Fatalf("encoded %d bytes, want ≤ 70%% of raw %d", len(buf), raw)
	}
	if !roundTrip(t, edges) {
		t.Fatal("round trip lost the compressed flag")
	}
}

// TestRawFallback pins the other side: uniform 32-bit sources make deltas
// ~5 bytes, so the encoder must fall back to raw and cost only the header.
func TestRawFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	edges := make([]core.Edge, 1024)
	for i := range edges {
		edges[i] = core.Edge{
			Src:    core.VertexID(rng.Uint32()),
			Dst:    core.VertexID(rng.Uint32()),
			Weight: rng.Float32(),
		}
	}
	var enc Encoder
	buf, compressed, err := enc.Encode(nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	if compressed {
		t.Fatalf("adversarial tile claims delta encoding")
	}
	raw := len(edges) * EdgeBytes
	if len(buf) > raw+16 {
		t.Fatalf("raw fallback costs %d bytes over %d raw", len(buf)-raw, raw)
	}
	roundTrip(t, edges)
}

func TestEncodeRejects(t *testing.T) {
	var enc Encoder
	if _, _, err := enc.Encode(nil, nil); err == nil {
		t.Fatal("empty tile encoded")
	}
}

// TestDecodeRejects walks the malformed shapes a hostile or torn file can
// present: each must error cleanly, never panic or mis-decode.
func TestDecodeRejects(t *testing.T) {
	var enc Encoder
	valid, _, err := enc.Encode(nil, []core.Edge{{Src: 1, Dst: 2, Weight: 0.5}, {Src: 3, Dst: 4, Weight: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       {FlagDelta},
		"bad-flag":    {0x7f, 0x01, 0x00},
		"zero-count":  {FlagDelta, 0x00, 0x00},
		"huge-count":  {FlagDelta, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x00},
		"payload-gap": {FlagDelta, 0x01, 0x40},                                      // claims 64 payload bytes, has none
		"raw-short":   {FlagRaw, 0x02, 0x0c, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, // 12 bytes for 2 records
	}
	for i := 1; i < len(valid); i++ {
		cases["truncated-"+string(rune('a'+i%26))+"_"] = valid[:i]
	}
	for name, data := range cases {
		if _, _, err := Decode(data, nil); err == nil {
			t.Errorf("%s: malformed tile decoded cleanly", name)
		}
	}
	// Flipping the payload-length byte to overflow must error, not read
	// into the next tile's bytes.
	two := append(append([]byte{}, valid...), valid...)
	if _, n, err := Decode(two, nil); err != nil || n != len(valid) {
		t.Fatalf("back-to-back tiles: consumed %d err %v, want %d nil", n, err, len(valid))
	}
}

// TestDecodeReuse checks the out-buffer contract: a large enough buffer is
// reused, a small one is replaced.
func TestDecodeReuse(t *testing.T) {
	var enc Encoder
	edges := []core.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	buf, _, err := enc.Encode(nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]core.Edge, 16)
	got, _, err := Decode(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[0] {
		t.Fatal("large out buffer was not reused")
	}
	sameEdges(t, got, edges)
}

func TestChecksumDetectsBitFlips(t *testing.T) {
	edges := []core.Edge{{Src: 1, Dst: 2, Weight: 1}, {Src: 3, Dst: 9, Weight: 1}, {Src: 4, Dst: 1, Weight: 1}}
	var enc Encoder
	buf, _, err := enc.Encode(nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0]&FlagCRC == 0 {
		t.Fatal("encoder did not set FlagCRC")
	}
	// Flip every bit of the payload and trailer in turn: each corruption
	// must be rejected (checksum mismatch or, for framing bytes, a
	// malformed-input error) — never silently decoded.
	for i := 1; i < len(buf); i++ {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 1 << b
			if _, _, err := Decode(mut, nil); err == nil {
				got, _, _ := DecodeVerify(mut, nil, true)
				t.Fatalf("bit flip at byte %d bit %d decoded silently: %+v", i, b, got)
			}
		}
	}
	// The unmutated tile still decodes, and skipping verification is
	// framing-identical.
	if _, n, err := Decode(buf, nil); err != nil || n != len(buf) {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
	if _, n, err := DecodeVerify(buf, nil, false); err != nil || n != len(buf) {
		t.Fatalf("unverified decode: n=%d err=%v", n, err)
	}
}

func TestChecksumMismatchIsErrCorrupted(t *testing.T) {
	edges := make([]core.Edge, 64)
	for i := range edges {
		edges[i] = core.Edge{Src: core.VertexID(i), Dst: core.VertexID(i * 7 % 64), Weight: 1}
	}
	var enc Encoder
	buf, _, err := enc.Encode(nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte well past the header.
	buf[len(buf)-6] ^= 0x40
	_, _, err = Decode(buf, nil)
	if err == nil {
		t.Fatal("corrupted payload decoded")
	}
	if !errors.Is(err, storage.ErrCorrupted) {
		t.Fatalf("corruption error %v does not wrap storage.ErrCorrupted", err)
	}
	// Verification off: the CRC is not compared, so the (structurally
	// valid) corruption decodes — exactly why verification defaults on.
	if _, _, err := DecodeVerify(buf, nil, false); err != nil {
		t.Fatalf("unverified decode of payload corruption: %v", err)
	}
}

func TestDecodeAcceptsPreChecksumTiles(t *testing.T) {
	edges := []core.Edge{{Src: 5, Dst: 6, Weight: 2}, {Src: 5, Dst: 7, Weight: 2}}
	var enc Encoder
	buf, _, err := enc.Encode(nil, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the tile as a pre-CRC artifact: clear the flag bit, drop
	// the trailer.
	old := append([]byte(nil), buf[:len(buf)-4]...)
	old[0] &^= FlagCRC
	got, n, err := Decode(old, nil)
	if err != nil {
		t.Fatalf("pre-checksum tile rejected: %v", err)
	}
	if n != len(old) {
		t.Fatalf("consumed %d of %d bytes", n, len(old))
	}
	sameEdges(t, got, edges)
}
