package graphgen

import "repro/internal/core"

// Dataset is a named workload: a stand-in for one of the paper's Figure 10
// datasets at a scale that runs on this testbed, or a native synthetic
// graph.
type Dataset struct {
	Name       string
	StandInFor string // paper dataset this substitutes, "" if native
	Kind       string // "directed", "undirected", "bipartite"
	Source     core.EdgeSource
}

// Scale knobs: the default sizes keep full benchmark sweeps in minutes on a
// few cores; tests use Tiny variants.
const (
	inMemScale = 18 // in-memory stand-ins: 256K–512K vertices
	oocScale   = 20 // out-of-core stand-ins: 1M vertices, 16M edge records
)

// AmazonLike stands in for amazon0601 (403K vertices / 3.4M directed
// edges): a small scale-free directed graph.
func AmazonLike() Dataset {
	return Dataset{
		Name:       "amazon-like",
		StandInFor: "amazon0601",
		Kind:       "directed",
		Source:     RMAT(RMATConfig{Scale: inMemScale - 2, EdgeFactor: 8, Seed: 42}),
	}
}

// PatentsLike stands in for cit-Patents (3.8M vertices / 16.5M edges): a
// sparser directed citation-style graph.
func PatentsLike() Dataset {
	return Dataset{
		Name:       "patents-like",
		StandInFor: "cit-Patents",
		Kind:       "directed",
		Source:     RMAT(RMATConfig{Scale: inMemScale, EdgeFactor: 4, Seed: 43}),
	}
}

// LiveJournalLike stands in for soc-livejournal (4.8M vertices / 69M
// edges): a denser scale-free social graph.
func LiveJournalLike() Dataset {
	return Dataset{
		Name:       "livejournal-like",
		StandInFor: "soc-livejournal",
		Kind:       "directed",
		Source:     RMAT(RMATConfig{Scale: inMemScale, EdgeFactor: 16, Seed: 44}),
	}
}

// DimacsLike stands in for dimacs-usa (24M vertices / 58M edges): the
// high-diameter road network whose traversals dominate Figure 12's worst
// cases. A 2-D grid reproduces the pathology (diameter ~ 2*side).
func DimacsLike() Dataset {
	return Dataset{
		Name:       "dimacs-like",
		StandInFor: "dimacs-usa",
		Kind:       "undirected",
		Source:     Grid(320, 320, 45),
	}
}

// TwitterLike stands in for the Twitter follower graph (41.7M vertices /
// 1.4B directed edges), the paper's main out-of-core workload.
func TwitterLike() Dataset {
	return Dataset{
		Name:       "twitter-like",
		StandInFor: "Twitter",
		Kind:       "directed",
		Source:     RMAT(RMATConfig{Scale: oocScale, EdgeFactor: 16, Seed: 46}),
	}
}

// FriendsterLike stands in for Friendster (65.6M vertices / 1.8B
// undirected edges).
func FriendsterLike() Dataset {
	return Dataset{
		Name:       "friendster-like",
		StandInFor: "Friendster",
		Kind:       "undirected",
		Source:     RMAT(RMATConfig{Scale: oocScale - 1, EdgeFactor: 16, Seed: 47, Undirected: true}),
	}
}

// SkLike stands in for sk-2005 (50.6M vertices / 1.9B directed edges), a
// web crawl.
func SkLike() Dataset {
	return Dataset{
		Name:       "sk-like",
		StandInFor: "sk-2005",
		Kind:       "directed",
		Source:     RMAT(RMATConfig{Scale: oocScale - 1, EdgeFactor: 32, Seed: 48}),
	}
}

// NetflixLike stands in for the Netflix prize ratings (0.5M vertices /
// 0.1B bipartite edges) used for ALS.
func NetflixLike() Dataset {
	return Dataset{
		Name:       "netflix-like",
		StandInFor: "Netflix",
		Kind:       "bipartite",
		Source:     Bipartite(60000, 4000, 1_000_000, 49),
	}
}

// InMemoryDatasets returns the stand-ins for the paper's four in-memory
// graphs (Figure 10, top half).
func InMemoryDatasets() []Dataset {
	return []Dataset{AmazonLike(), PatentsLike(), LiveJournalLike(), DimacsLike()}
}

// OutOfCoreDatasets returns the stand-ins for the paper's out-of-core
// graphs used in the Figure 12 SSD/disk rows.
func OutOfCoreDatasets() []Dataset {
	return []Dataset{TwitterLike(), FriendsterLike(), SkLike()}
}
