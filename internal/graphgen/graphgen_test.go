package graphgen

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func materialize(t *testing.T, src core.EdgeSource) []core.Edge {
	t.Helper()
	edges, err := core.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 7}
	a := materialize(t, RMAT(cfg))
	b := materialize(t, RMAT(cfg))
	if len(a) != len(b) || len(a) != int(cfg.NumEdges()) {
		t.Fatalf("lens %d %d want %d", len(a), len(b), cfg.NumEdges())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pass divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRMATInRange(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		scale := int(scaleRaw%8) + 4
		cfg := RMATConfig{Scale: scale, EdgeFactor: 4, Seed: seed}
		src := RMAT(cfg)
		n := core.VertexID(cfg.NumVertices())
		ok := true
		count := int64(0)
		src.Edges(func(b []core.Edge) error {
			for _, e := range b {
				count++
				if e.Src >= n || e.Dst >= n || e.Weight < 0 || e.Weight >= 1 {
					ok = false
				}
			}
			return nil
		})
		return ok && count == cfg.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRMATUndirectedPairs(t *testing.T) {
	cfg := RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 3, Undirected: true}
	edges := materialize(t, RMAT(cfg))
	if len(edges)%2 != 0 {
		t.Fatal("odd number of records")
	}
	for i := 0; i < len(edges); i += 2 {
		fwd, bwd := edges[i], edges[i+1]
		if fwd.Src != bwd.Dst || fwd.Dst != bwd.Src || fwd.Weight != bwd.Weight {
			t.Fatalf("pair %d not mirrored: %+v %+v", i, fwd, bwd)
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// Scale-free property: the max out-degree must far exceed the mean.
	cfg := RMATScale(12, 5, false)
	deg := make([]int, cfg.NumVertices())
	RMAT(cfg).Edges(func(b []core.Edge) error {
		for _, e := range b {
			deg[e.Src]++
		}
		return nil
	})
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 16*8 { // mean degree is 16; demand >=8x skew
		t.Fatalf("max degree %d too small for a scale-free graph", max)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5, 1)
	if g.NumVertices() != 20 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// 4*4 horizontal + 3*5 vertical = 31 undirected edges = 62 records.
	if g.NumEdges() != 62 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	edges := materialize(t, g)
	if int64(len(edges)) != g.NumEdges() {
		t.Fatalf("materialized %d", len(edges))
	}
	// Every edge connects lattice neighbours.
	for _, e := range edges {
		r1, c1 := int(e.Src)/5, int(e.Src)%5
		r2, c2 := int(e.Dst)/5, int(e.Dst)%5
		dr, dc := r1-r2, c1-c2
		if dr*dr+dc*dc != 1 {
			t.Fatalf("non-neighbour edge %+v", e)
		}
	}
}

func TestBipartite(t *testing.T) {
	const users, items, ratings = 50, 10, 200
	b := Bipartite(users, items, ratings, 9)
	if b.NumVertices() != users+items {
		t.Fatalf("vertices = %d", b.NumVertices())
	}
	edges := materialize(t, b)
	if len(edges) != 2*ratings {
		t.Fatalf("records = %d", len(edges))
	}
	for i := 0; i < len(edges); i += 2 {
		u, v := edges[i].Src, edges[i].Dst
		if int(u) >= users || int(v) < users || int(v) >= users+items {
			t.Fatalf("edge %d crosses sides wrong: %d->%d", i, u, v)
		}
		if edges[i+1].Src != v || edges[i+1].Dst != u {
			t.Fatalf("missing mirror at %d", i)
		}
		if edges[i].Weight < 0.19 || edges[i].Weight > 1.0 {
			t.Fatalf("rating weight %f out of range", edges[i].Weight)
		}
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(100, 1001, 2, false)
	edges := materialize(t, u)
	if len(edges) != 1001 {
		t.Fatalf("len = %d", len(edges))
	}
	ud := Uniform(100, 1001, 2, true)
	if ud.NumEdges() != 1000 {
		t.Fatalf("undirected rounds to even, got %d", ud.NumEdges())
	}
}

func TestChain(t *testing.T) {
	c := Chain(5, 1)
	edges := materialize(t, c)
	if len(edges) != 8 {
		t.Fatalf("len = %d", len(edges))
	}
}

func TestDatasets(t *testing.T) {
	for _, d := range append(InMemoryDatasets(), NetflixLike()) {
		if d.Name == "" || d.Source == nil {
			t.Fatalf("bad dataset %+v", d)
		}
		if d.Source.NumEdges() <= 0 || d.Source.NumVertices() <= 0 {
			t.Fatalf("%s: empty", d.Name)
		}
	}
	// Out-of-core stand-ins are declared but not materialized here (big).
	for _, d := range OutOfCoreDatasets() {
		if d.Source.NumEdges() < 1<<22 {
			t.Fatalf("%s too small for an out-of-core stand-in: %d", d.Name, d.Source.NumEdges())
		}
	}
}

// refBFS computes hop distances with a plain queue — the reference the
// high-diameter generators' eccentricity claims are checked against.
func refBFS(n int64, edges []core.Edge, root core.VertexID) []int32 {
	adj := make([][]core.VertexID, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []core.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func maxDist(dist []int32) int32 {
	var m int32
	for _, d := range dist {
		if d > m {
			m = d
		}
	}
	return m
}

// TestChainDiameter: the path graph's eccentricity from vertex 0 is
// exactly n-1 — the worst case for scatter-gather iteration counts.
func TestChainDiameter(t *testing.T) {
	const n = 257
	c := Chain(n, 3)
	edges := materialize(t, c)
	if int64(len(edges)) != c.NumEdges() || c.NumEdges() != 2*(n-1) {
		t.Fatalf("records = %d, declared %d", len(edges), c.NumEdges())
	}
	dist := refBFS(n, edges, 0)
	for v := int64(0); v < n; v++ {
		if dist[v] != int32(v) {
			t.Fatalf("vertex %d at distance %d", v, dist[v])
		}
	}
}

// TestGridDiameter: the rows×cols grid has eccentricity rows+cols-2 from a
// corner — the DIMACS-road stand-in's defining property.
func TestGridDiameter(t *testing.T) {
	const rows, cols = 13, 9
	g := Grid(rows, cols, 4)
	edges := materialize(t, g)
	dist := refBFS(g.NumVertices(), edges, 0)
	if got := maxDist(dist); got != rows+cols-2 {
		t.Fatalf("eccentricity %d, want %d", got, rows+cols-2)
	}
	for v, d := range dist {
		if d < 0 {
			t.Fatalf("vertex %d unreachable", v)
		}
		if want := int32(v/cols + v%cols); d != want {
			t.Fatalf("vertex %d at distance %d, want Manhattan %d", v, d, want)
		}
	}
}

// TestCliqueChain checks the frontier stress generator: counts, structure
// (edges stay inside a clique or bridge adjacent cliques), connectivity,
// high diameter (~2·cliques), and determinism.
func TestCliqueChain(t *testing.T) {
	const cliques, size = 20, 5
	c := CliqueChain(cliques, size, 7)
	if c.NumVertices() != cliques*size {
		t.Fatalf("vertices = %d", c.NumVertices())
	}
	wantEdges := int64(cliques*size*(size-1) + 2*(cliques-1))
	if c.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", c.NumEdges(), wantEdges)
	}
	edges := materialize(t, c)
	if int64(len(edges)) != wantEdges {
		t.Fatalf("materialized %d records, declared %d", len(edges), wantEdges)
	}

	intra, bridges := 0, 0
	for _, e := range edges {
		qs, qd := int(e.Src)/size, int(e.Dst)/size
		switch {
		case qs == qd:
			intra++
		case qd == qs+1:
			// Forward bridge: last vertex of qs to first of qd.
			if int(e.Src)%size != size-1 || int(e.Dst)%size != 0 {
				t.Fatalf("malformed bridge %+v", e)
			}
			bridges++
		case qd == qs-1:
			if int(e.Dst)%size != size-1 || int(e.Src)%size != 0 {
				t.Fatalf("malformed bridge %+v", e)
			}
			bridges++
		default:
			t.Fatalf("edge %+v spans non-adjacent cliques", e)
		}
	}
	if bridges != 2*(cliques-1) {
		t.Fatalf("bridge records = %d, want %d", bridges, 2*(cliques-1))
	}
	if intra != cliques*size*(size-1) {
		t.Fatalf("intra records = %d", intra)
	}

	dist := refBFS(c.NumVertices(), edges, 0)
	for v, d := range dist {
		if d < 0 {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
	// The far end of the chain is ~2 hops per clique away (bridge +
	// intra-clique step); size>2 keeps the corner cases away.
	ecc := maxDist(dist)
	if ecc < 2*(cliques-1) {
		t.Fatalf("eccentricity %d, want >= %d (high diameter)", ecc, 2*(cliques-1))
	}

	again := materialize(t, CliqueChain(cliques, size, 7))
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatalf("nondeterministic at record %d", i)
		}
	}
}
