// Package graphgen generates the synthetic graphs the paper evaluates on:
// RMAT scale-free graphs with Graph500 parameters (§5.2), plus the
// high-diameter, bipartite and uniform graphs used as stand-ins for the
// real-world datasets of Figure 10 that cannot be redistributed here.
//
// All generators are deterministic functions of their seed, and the
// streaming variants regenerate identical edge lists on every pass, so they
// can be used directly as re-streamable EdgeSources without materializing
// the graph.
package graphgen

import (
	"math/rand"

	"repro/internal/core"
)

// Graph500 RMAT partition probabilities (Chakrabarti et al., as
// recommended by the Graph500 benchmark the paper follows).
const (
	rmatA = 0.57
	rmatB = 0.19
	rmatC = 0.19
	// rmatD = 0.05 (remainder)
)

// RMATConfig describes an RMAT generation.
type RMATConfig struct {
	Scale      int   // 2^Scale vertices
	EdgeFactor int   // directed edge records = EdgeFactor * 2^Scale (16 gives the paper's scale-n graphs)
	Seed       int64 //
	Undirected bool  // emit each generated edge in both directions (EdgeFactor counts records)
}

// NumVertices returns the vertex count of the configuration.
func (c RMATConfig) NumVertices() int64 { return 1 << c.Scale }

// NumEdges returns the number of directed edge records generated.
func (c RMATConfig) NumEdges() int64 {
	n := int64(c.EdgeFactor) << c.Scale
	if c.Undirected {
		n &^= 1 // even, since edges come in pairs
	}
	return n
}

// RMATScale returns the paper's "scale n" configuration: 2^n vertices and
// 2^(n+4) edge records (average degree 16).
func RMATScale(n int, seed int64, undirected bool) RMATConfig {
	return RMATConfig{Scale: n, EdgeFactor: 16, Seed: seed, Undirected: undirected}
}

// rmatSource streams RMAT edges, regenerating deterministically per pass.
type rmatSource struct {
	cfg RMATConfig
}

// RMAT returns a re-streamable EdgeSource generating the configured graph.
func RMAT(cfg RMATConfig) core.EdgeSource {
	if cfg.EdgeFactor <= 0 {
		cfg.EdgeFactor = 16
	}
	return &rmatSource{cfg: cfg}
}

func (s *rmatSource) NumVertices() int64 { return s.cfg.NumVertices() }
func (s *rmatSource) NumEdges() int64    { return s.cfg.NumEdges() }

func (s *rmatSource) Edges(fn func([]Edge) error) error {
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	total := s.cfg.NumEdges()
	const batchSize = 64 << 10
	buf := make([]Edge, 0, batchSize)
	emit := func(e Edge) error {
		buf = append(buf, e)
		if len(buf) == batchSize {
			err := fn(buf)
			buf = buf[:0]
			return err
		}
		return nil
	}
	if s.cfg.Undirected {
		for i := int64(0); i < total; i += 2 {
			src, dst := rmatPick(rng, s.cfg.Scale)
			w := rng.Float32()
			if err := emit(Edge{Src: src, Dst: dst, Weight: w}); err != nil {
				return err
			}
			if err := emit(Edge{Src: dst, Dst: src, Weight: w}); err != nil {
				return err
			}
		}
	} else {
		for i := int64(0); i < total; i++ {
			src, dst := rmatPick(rng, s.cfg.Scale)
			if err := emit(Edge{Src: src, Dst: dst, Weight: rng.Float32()}); err != nil {
				return err
			}
		}
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}

// Edge is re-exported for brevity inside this package.
type Edge = core.Edge

// rmatPick recursively descends the adjacency-matrix quadrants.
func rmatPick(rng *rand.Rand, scale int) (src, dst core.VertexID) {
	for i := 0; i < scale; i++ {
		r := rng.Float64()
		var sb, db core.VertexID
		switch {
		case r < rmatA:
			// top-left: 0,0
		case r < rmatA+rmatB:
			db = 1
		case r < rmatA+rmatB+rmatC:
			sb = 1
		default:
			sb, db = 1, 1
		}
		src = src<<1 | sb
		dst = dst<<1 | db
	}
	return src, dst
}
