package graphgen

import (
	"math/rand"

	"repro/internal/core"
)

// Grid returns a rows×cols 2-D grid graph as an undirected edge list (each
// lattice edge stored in both directions). Grid graphs have diameter
// rows+cols-2, standing in for the high-diameter DIMACS USA-road graph
// whose traversal pathology the paper analyzes in §5.3.
func Grid(rows, cols int, seed int64) core.EdgeSource {
	return &gridSource{rows: rows, cols: cols, seed: seed}
}

type gridSource struct {
	rows, cols int
	seed       int64
}

func (g *gridSource) NumVertices() int64 { return int64(g.rows) * int64(g.cols) }

func (g *gridSource) NumEdges() int64 {
	horiz := int64(g.rows) * int64(g.cols-1)
	vert := int64(g.rows-1) * int64(g.cols)
	return 2 * (horiz + vert)
}

func (g *gridSource) Edges(fn func([]Edge) error) error {
	rng := rand.New(rand.NewSource(g.seed))
	const batchSize = 64 << 10
	buf := make([]Edge, 0, batchSize)
	emit := func(e Edge) error {
		buf = append(buf, e)
		if len(buf) == batchSize {
			err := fn(buf)
			buf = buf[:0]
			return err
		}
		return nil
	}
	id := func(r, c int) core.VertexID { return core.VertexID(r*g.cols + c) }
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			if c+1 < g.cols {
				w := rng.Float32()
				if err := emit(Edge{Src: id(r, c), Dst: id(r, c+1), Weight: w}); err != nil {
					return err
				}
				if err := emit(Edge{Src: id(r, c+1), Dst: id(r, c), Weight: w}); err != nil {
					return err
				}
			}
			if r+1 < g.rows {
				w := rng.Float32()
				if err := emit(Edge{Src: id(r, c), Dst: id(r+1, c), Weight: w}); err != nil {
					return err
				}
				if err := emit(Edge{Src: id(r+1, c), Dst: id(r, c), Weight: w}); err != nil {
					return err
				}
			}
		}
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}

// Bipartite returns a random bipartite ratings graph: users are vertices
// [0, users), items are [users, users+items), and each of the ratings
// edges connects a random user to a random item with a weight drawn from
// {1..5} scaled to [0.2, 1.0]. Edges are stored in both directions so that
// alternating least squares can gather on either side. Stand-in for the
// Netflix dataset.
func Bipartite(users, items int, ratings int64, seed int64) core.EdgeSource {
	return &bipartiteSource{users: users, items: items, ratings: ratings, seed: seed}
}

type bipartiteSource struct {
	users, items int
	ratings      int64
	seed         int64
}

func (b *bipartiteSource) NumVertices() int64 { return int64(b.users) + int64(b.items) }
func (b *bipartiteSource) NumEdges() int64    { return 2 * b.ratings }

func (b *bipartiteSource) Edges(fn func([]Edge) error) error {
	rng := rand.New(rand.NewSource(b.seed))
	const batchSize = 64 << 10
	buf := make([]Edge, 0, batchSize)
	for i := int64(0); i < b.ratings; i++ {
		u := core.VertexID(rng.Intn(b.users))
		v := core.VertexID(b.users + rng.Intn(b.items))
		w := float32(rng.Intn(5)+1) / 5
		buf = append(buf, Edge{Src: u, Dst: v, Weight: w}, Edge{Src: v, Dst: u, Weight: w})
		if len(buf) >= batchSize {
			if err := fn(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}

// Uniform returns a uniform random graph with n vertices and m directed
// edge records (m must be even if undirected).
func Uniform(n int64, m int64, seed int64, undirected bool) core.EdgeSource {
	return &uniformSource{n: n, m: m, seed: seed, undirected: undirected}
}

type uniformSource struct {
	n, m       int64
	seed       int64
	undirected bool
}

func (u *uniformSource) NumVertices() int64 { return u.n }

func (u *uniformSource) NumEdges() int64 {
	if u.undirected {
		return u.m &^ 1
	}
	return u.m
}

func (u *uniformSource) Edges(fn func([]Edge) error) error {
	rng := rand.New(rand.NewSource(u.seed))
	const batchSize = 64 << 10
	buf := make([]Edge, 0, batchSize)
	total := u.NumEdges()
	for i := int64(0); i < total; {
		s := core.VertexID(rng.Int63n(u.n))
		d := core.VertexID(rng.Int63n(u.n))
		w := rng.Float32()
		buf = append(buf, Edge{Src: s, Dst: d, Weight: w})
		i++
		if u.undirected {
			buf = append(buf, Edge{Src: d, Dst: s, Weight: w})
			i++
		}
		if len(buf) >= batchSize {
			if err := fn(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}

// CliqueChain returns a "beads on a string" graph: cliques of cliqueSize
// vertices chained by single bridge edges (the last vertex of clique i to
// the first of clique i+1), stored undirected. Vertex IDs are assigned
// clique by clique; pass the source through a random relabeling to hide
// that structure from a range partitioner.
//
// It is the designed stress case for frontier-aware selective streaming:
// the diameter is ~2·cliques (each hop alternates bridge and intra-clique
// expansion) so traversals run hundreds of iterations, yet the BFS
// frontier occupies only one or two cliques at a time — almost every
// partition is skippable almost every iteration, and a locality-aware
// partitioner that packs cliques into contiguous ranges maximizes those
// skips. High diameter with community structure is exactly the regime
// where the paper's stream-everything design loses to index-based systems
// (§5.3); this generator measures how much of that loss selective
// scheduling recovers.
func CliqueChain(cliques, cliqueSize int, seed int64) core.EdgeSource {
	if cliques < 1 {
		cliques = 1
	}
	if cliqueSize < 1 {
		cliqueSize = 1
	}
	return &cliqueChainSource{cliques: cliques, size: cliqueSize, seed: seed}
}

type cliqueChainSource struct {
	cliques, size int
	seed          int64
}

func (c *cliqueChainSource) NumVertices() int64 { return int64(c.cliques) * int64(c.size) }

func (c *cliqueChainSource) NumEdges() int64 {
	intra := int64(c.cliques) * int64(c.size) * int64(c.size-1) // each clique complete, both directions
	bridges := 2 * int64(c.cliques-1)
	return intra + bridges
}

func (c *cliqueChainSource) Edges(fn func([]Edge) error) error {
	rng := rand.New(rand.NewSource(c.seed))
	const batchSize = 64 << 10
	buf := make([]Edge, 0, batchSize)
	emit := func(a, b core.VertexID, w float32) error {
		buf = append(buf, Edge{Src: a, Dst: b, Weight: w}, Edge{Src: b, Dst: a, Weight: w})
		if len(buf) >= batchSize {
			err := fn(buf)
			buf = buf[:0]
			return err
		}
		return nil
	}
	for q := 0; q < c.cliques; q++ {
		base := core.VertexID(q * c.size)
		for i := 0; i < c.size; i++ {
			for j := i + 1; j < c.size; j++ {
				if err := emit(base+core.VertexID(i), base+core.VertexID(j), rng.Float32()); err != nil {
					return err
				}
			}
		}
		if q+1 < c.cliques {
			next := core.VertexID((q + 1) * c.size)
			if err := emit(base+core.VertexID(c.size-1), next, rng.Float32()); err != nil {
				return err
			}
		}
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}

// Chain returns a path graph 0-1-2-...-n-1 stored in both directions: the
// worst case for iteration count (diameter n-1).
func Chain(n int64, seed int64) core.EdgeSource {
	return &chainSource{n: n, seed: seed}
}

type chainSource struct {
	n    int64
	seed int64
}

func (c *chainSource) NumVertices() int64 { return c.n }
func (c *chainSource) NumEdges() int64    { return 2 * (c.n - 1) }

func (c *chainSource) Edges(fn func([]Edge) error) error {
	rng := rand.New(rand.NewSource(c.seed))
	const batchSize = 64 << 10
	buf := make([]Edge, 0, batchSize)
	for v := int64(0); v+1 < c.n; v++ {
		w := rng.Float32()
		buf = append(buf, Edge{Src: core.VertexID(v), Dst: core.VertexID(v + 1), Weight: w},
			Edge{Src: core.VertexID(v + 1), Dst: core.VertexID(v), Weight: w})
		if len(buf) >= batchSize {
			if err := fn(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return fn(buf)
	}
	return nil
}
