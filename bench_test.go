// Benchmarks: one per paper table/figure (delegating to the harness in
// internal/bench at smoke-test scale — run cmd/xbench for full-scale
// reproductions), plus component micro-benchmarks and the design-decision
// ablations called out in DESIGN.md §4.
package xstream_test

import (
	"testing"

	xstream "repro"
	"repro/internal/algorithms"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
	"repro/internal/storage"
	"repro/internal/streambuf"
)

// figBench runs one registered figure experiment per benchmark iteration.
func figBench(b *testing.B, id string) {
	r, ok := bench.Get(id)
	if !ok {
		b.Fatalf("no runner %s", id)
	}
	cfg := bench.Config{Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08MemoryBandwidth(b *testing.B)   { figBench(b, "fig08") }
func BenchmarkFig09DiskBandwidth(b *testing.B)     { figBench(b, "fig09") }
func BenchmarkFig10Datasets(b *testing.B)          { figBench(b, "fig10") }
func BenchmarkFig11SeqVsRandom(b *testing.B)       { figBench(b, "fig11") }
func BenchmarkFig12aAlgorithms(b *testing.B)       { figBench(b, "fig12a") }
func BenchmarkFig12bWCCProfile(b *testing.B)       { figBench(b, "fig12b") }
func BenchmarkFig13HyperANF(b *testing.B)          { figBench(b, "fig13") }
func BenchmarkFig14Scaling(b *testing.B)           { figBench(b, "fig14") }
func BenchmarkFig15IOParallelism(b *testing.B)     { figBench(b, "fig15") }
func BenchmarkFig16AcrossDevices(b *testing.B)     { figBench(b, "fig16") }
func BenchmarkFig17Ingest(b *testing.B)            { figBench(b, "fig17") }
func BenchmarkFig18SortVsStream(b *testing.B)      { figBench(b, "fig18") }
func BenchmarkFig19BFS(b *testing.B)               { figBench(b, "fig19") }
func BenchmarkFig20Ligra(b *testing.B)             { figBench(b, "fig20") }
func BenchmarkFig21MemoryRefs(b *testing.B)        { figBench(b, "fig21") }
func BenchmarkFig22GraphChi(b *testing.B)          { figBench(b, "fig22") }
func BenchmarkFig23BandwidthTimeline(b *testing.B) { figBench(b, "fig23") }
func BenchmarkFig24Partitions(b *testing.B)        { figBench(b, "fig24") }
func BenchmarkFig25Shuffler(b *testing.B)          { figBench(b, "fig25") }
func BenchmarkFig26IOModel(b *testing.B)           { figBench(b, "fig26") }

// ---- component micro-benchmarks ----

// benchGraph is a shared mid-size workload: 2^14 vertices, 512K records.
func benchGraph() xstream.EdgeSource {
	return xstream.RMAT(xstream.RMATConfig{Scale: 14, EdgeFactor: 16, Seed: 1, Undirected: true})
}

func BenchmarkMemEngineWCC(b *testing.B) {
	src := benchGraph()
	b.SetBytes(src.NumEdges() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xstream.RunMemory(src, xstream.NewWCC(), xstream.MemConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemEnginePageRank(b *testing.B) {
	src := benchGraph()
	b.SetBytes(src.NumEdges() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xstream.RunMemory(src, xstream.NewPageRank(5), xstream.MemConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskEngineWCC(b *testing.B) {
	src := benchGraph()
	b.SetBytes(src.NumEdges() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := storage.NewSim(storage.SSDParams("b", 2, 0))
		if _, err := xstream.RunDisk(src, xstream.NewWCC(), xstream.DiskConfig{
			Device: dev, IOUnit: 256 << 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShuffle(b *testing.B) {
	type rec struct{ Key, Val uint32 }
	const n = 1 << 20
	const k = 1024
	recs := make([]rec, n)
	for i := range recs {
		recs[i] = rec{Key: uint32(i*2654435761) % k, Val: uint32(i)}
	}
	in, out := streambuf.New[rec](n), streambuf.New[rec](n)
	plan, _ := streambuf.NewPlan(k, 32)
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Fill(recs)
		streambuf.Shuffle(in, out, plan, 2, func(r rec) uint32 { return r.Key })
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	cfg := graphgen.RMATConfig{Scale: 16, EdgeFactor: 16, Seed: 1}
	b.SetBytes(cfg.NumEdges() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		graphgen.RMAT(cfg).Edges(func(batch []core.Edge) error {
			n += len(batch)
			return nil
		})
		if int64(n) != cfg.NumEdges() {
			b.Fatal("short generation")
		}
	}
}

func BenchmarkCSRBuildCountingSort(b *testing.B) {
	src := benchGraph()
	edges, _ := core.Materialize(src)
	b.SetBytes(int64(len(edges)) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.BuildCountingSort(src.NumVertices(), edges)
	}
}

// ---- design-decision ablations (DESIGN.md §4) ----

func BenchmarkAblationPrefetch(b *testing.B) {
	src := benchGraph()
	for _, tc := range []struct {
		name string
		off  bool
	}{{"on", false}, {"off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := storage.NewSim(storage.HDDParams("b", 2, 0.05))
				_, err := diskengine.Run(src, algorithms.NewWCC(), diskengine.Config{
					Device: dev, IOUnit: 128 << 10, NoPrefetch: tc.off, NoUpdateBypass: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationUpdateBypass(b *testing.B) {
	src := benchGraph()
	for _, tc := range []struct {
		name string
		off  bool
	}{{"on", false}, {"off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var written int64
			for i := 0; i < b.N; i++ {
				dev := storage.NewSim(storage.SSDParams("b", 2, 0))
				// The stream buffer must hold one scatter's updates for
				// the bypass to engage, so use a generous I/O unit.
				res, err := diskengine.Run(src, algorithms.NewSpMV(), diskengine.Config{
					Device: dev, IOUnit: 16 << 20, NoUpdateBypass: tc.off,
				})
				if err != nil {
					b.Fatal(err)
				}
				written += res.Stats.BytesWritten
			}
			b.ReportMetric(float64(written)/float64(b.N)/1e6, "MB-written/op")
		})
	}
}

func BenchmarkAblationWorkStealing(b *testing.B) {
	src := benchGraph()
	for _, tc := range []struct {
		name   string
		static bool
	}{{"steal", false}, {"static", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := memengine.Run(src, algorithms.NewPageRank(5), memengine.Config{
					Partitions: 64, NoWorkStealing: tc.static,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCSRvsStream(b *testing.B) {
	src := benchGraph()
	edges, _ := core.Materialize(src)
	n := src.NumVertices()
	b.Run("sort-index-then-pagerank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := baseline.BuildQuicksort(n, edges)
			g.PageRank(5)
		}
	})
	b.Run("stream-unsorted-pagerank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := memengine.Run(src, algorithms.NewPageRank(5), memengine.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
