package xstream_test

import (
	"context"
	"math"
	"testing"

	xstream "repro"
	"repro/internal/xstreamtest"
)

// Shared-pass equivalence: a job co-scheduled into RunMany must produce
// exactly the results of its own solo Run under the same configuration —
// across engines, partitioners and selective scheduling, with a mixed set
// that exercises per-job frontiers (BFS/SSSP/WCC), dense phased programs
// (PageRank) and split direction groups (PageRank streams the transpose in
// iteration 0 while the traversals stream forward).

// runManyCase is one (engine, partitioner, selective) combination.
type runManyCase struct {
	name      string
	mem       bool
	part      func() xstream.Partitioner
	selective bool
}

func runManyCases() []runManyCase {
	return []runManyCase{
		{"mem/range", true, xstream.NewRangePartitioner, false},
		{"mem/range/selective", true, xstream.NewRangePartitioner, true},
		{"mem/2ps/selective", true, xstream.New2PSPartitioner, true},
		{"disk/range", false, xstream.NewRangePartitioner, false},
		{"disk/range/selective", false, xstream.NewRangePartitioner, true},
		{"disk/2ps/selective", false, xstream.New2PSPartitioner, true},
	}
}

func (c runManyCase) memConfig() xstream.MemConfig {
	cfg := xstreamtest.MemConfig()
	cfg.Partitions, cfg.Partitioner, cfg.Selective = 16, c.part(), c.selective
	return cfg
}

func (c runManyCase) diskConfig() xstream.DiskConfig {
	cfg := xstreamtest.DiskConfig("runmany")
	cfg.Partitioner, cfg.Selective = c.part(), c.selective
	return cfg
}

// soloVertices runs prog alone through the classic Run path.
func soloVertices[V, M any](t *testing.T, c runManyCase, src xstream.EdgeSource, prog xstream.Program[V, M]) []V {
	t.Helper()
	if c.mem {
		res, err := xstream.RunMemory(src, prog, c.memConfig())
		if err != nil {
			t.Fatalf("%s: solo mem: %v", c.name, err)
		}
		return res.Vertices
	}
	res, err := xstream.RunDisk(src, prog, c.diskConfig())
	if err != nil {
		t.Fatalf("%s: solo disk: %v", c.name, err)
	}
	return res.Vertices
}

func runManySet(t *testing.T, c runManyCase, src xstream.EdgeSource, set xstream.ProgramSet) ([]xstream.JobResult, xstream.Stats) {
	t.Helper()
	var results []xstream.JobResult
	var pass xstream.Stats
	var err error
	if c.mem {
		results, pass, err = xstream.RunManyMemory(context.Background(), src, set, c.memConfig())
	} else {
		results, pass, err = xstream.RunManyDisk(context.Background(), src, set, c.diskConfig())
	}
	if err != nil {
		t.Fatalf("%s: RunMany: %v", c.name, err)
	}
	if pass.CoJobs != len(set) {
		t.Fatalf("%s: pass CoJobs = %d, want %d", c.name, pass.CoJobs, len(set))
	}
	return results, pass
}

func TestRunManyEquivalence(t *testing.T) {
	src := xstreamtest.RMATUndirected(10, 61)
	const root = 3
	const prIters = 5

	for _, c := range runManyCases() {
		t.Run(c.name, func(t *testing.T) {
			wantBFS := xstream.BFSLevels(soloVertices(t, c, src, xstream.NewBFS(root)))
			wantWCC := xstream.WCCLabels(soloVertices(t, c, src, xstream.NewWCC()))
			wantSSSP := xstream.SSSPDistances(soloVertices(t, c, src, xstream.NewSSSP(root)))
			wantPR := xstream.PageRankValues(soloVertices(t, c, src, xstream.NewPageRank(prIters)))

			set := xstream.ProgramSet{
				xstream.NewJob[xstream.BFSState, int32](xstream.NewBFS(root)),
				xstream.NewJob[xstream.WCCState, xstream.VertexID](xstream.NewWCC()),
				xstream.NewJob[xstream.SSSPState, float32](xstream.NewSSSP(root)),
				xstream.NewJob[xstream.PRState, float32](xstream.NewPageRank(prIters)),
			}
			results, pass := runManySet(t, c, src, set)

			gotBFS := xstream.BFSLevels(results[0].Vertices.([]xstream.BFSState))
			gotWCC := xstream.WCCLabels(results[1].Vertices.([]xstream.WCCState))
			gotSSSP := xstream.SSSPDistances(results[2].Vertices.([]xstream.SSSPState))
			gotPR := xstream.PageRankValues(results[3].Vertices.([]xstream.PRState))

			for v := range wantBFS {
				// Min-lattice algorithms have a unique fixpoint: shared-pass
				// results must be bit-identical to the solo runs.
				if gotBFS[v] != wantBFS[v] {
					t.Fatalf("BFS vertex %d: level %d, want %d", v, gotBFS[v], wantBFS[v])
				}
				if gotWCC[v] != wantWCC[v] {
					t.Fatalf("WCC vertex %d: label %d, want %d", v, gotWCC[v], wantWCC[v])
				}
				if gotSSSP[v] != wantSSSP[v] {
					t.Fatalf("SSSP vertex %d: dist %g, want %g", v, gotSSSP[v], wantSSSP[v])
				}
				// PageRank sums floats, whose reduction order legitimately
				// varies with thread scheduling (exactly as the solo
				// equivalence suite tolerates).
				diff := math.Abs(float64(gotPR[v]) - float64(wantPR[v]))
				if diff > 1e-3*(1+math.Abs(float64(wantPR[v]))) {
					t.Fatalf("PageRank vertex %d: rank %g, want %g", v, gotPR[v], wantPR[v])
				}
			}

			// The pass streams the union once: the sum of per-job streams
			// beyond the pass's own is the sharing win.
			var jobStreamed int64
			for _, r := range results {
				jobStreamed += r.Stats.EdgesStreamed
			}
			if want := jobStreamed - pass.EdgesStreamed; pass.EdgesShared != want && !(want < 0 && pass.EdgesShared == 0) {
				t.Fatalf("EdgesShared = %d, want %d", pass.EdgesShared, want)
			}
			if pass.EdgesShared <= 0 {
				t.Fatalf("4 co-scheduled jobs shared no edge reads (pass streamed %d)", pass.EdgesStreamed)
			}
		})
	}
}

// TestRunManyBitExact: with one thread the in-memory engine is fully
// deterministic, so a co-scheduled PageRank must match its solo run to the
// last bit — same combining windows, same shuffle, same fold order.
func TestRunManyBitExact(t *testing.T) {
	src := xstreamtest.RMAT(9, 62)
	cfg := xstream.MemConfig{Threads: 1, Partitions: 16}
	solo, err := xstream.RunMemory(src, xstream.NewPageRank(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := xstream.ProgramSet{
		xstream.NewJob[xstream.PRState, float32](xstream.NewPageRank(5)),
		xstream.NewJob[xstream.PRState, float32](xstream.NewPageRank(5)),
		xstream.NewJob[xstream.PRState, float32](xstream.NewPageRank(5)),
	}
	results, _, err := xstream.RunManyMemory(context.Background(), src, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		got := r.Vertices.([]xstream.PRState)
		for v := range solo.Vertices {
			if got[v] != solo.Vertices[v] {
				t.Fatalf("job %d vertex %d: %+v, want %+v (bitwise)", i, v, got[v], solo.Vertices[v])
			}
		}
	}
}

// TestRunManyAmortization: K identical dense jobs must stream the edge
// list once per pass — per-job streams equal the pass stream, and
// EdgesShared is (K-1) times it.
func TestRunManyAmortization(t *testing.T) {
	src := xstreamtest.RMAT(9, 63)
	const k = 4
	set := make(xstream.ProgramSet, k)
	for i := range set {
		set[i] = xstream.NewJob[xstream.PRState, float32](xstream.NewPageRank(5))
	}
	results, pass, err := xstream.RunManyMemory(context.Background(), src, set, xstream.MemConfig{Threads: 2, Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	per := results[0].Stats.EdgesStreamed
	if pass.EdgesStreamed != per {
		t.Fatalf("pass streamed %d, want the single-job stream %d", pass.EdgesStreamed, per)
	}
	if want := (k - 1) * per; pass.EdgesShared != want {
		t.Fatalf("EdgesShared = %d, want %d", pass.EdgesShared, want)
	}
}

// TestRunManyCancel: a canceled context stops the pass between iterations.
func TestRunManyCancel(t *testing.T) {
	src := xstreamtest.RMAT(9, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set := xstream.ProgramSet{xstream.NewJob[xstream.PRState, float32](xstream.NewPageRank(50))}
	if _, _, err := xstream.RunManyMemory(ctx, src, set, xstream.MemConfig{Threads: 2}); err != context.Canceled {
		t.Fatalf("mem: err = %v, want context.Canceled", err)
	}
	dev := xstream.NewSimDevice(xstream.SimSSD("cancel", 2, 0))
	dcfg := xstream.DiskConfig{Device: dev, Threads: 2, IOUnit: 32 << 10, Partitions: 4}
	if _, _, err := xstream.RunManyDisk(ctx, src, set, dcfg); err != context.Canceled {
		t.Fatalf("disk: err = %v, want context.Canceled", err)
	}
	// The classic Run paths honor Config.Context the same way.
	if _, err := xstream.RunMemory(src, xstream.NewPageRank(50), xstream.MemConfig{Threads: 2, Context: ctx}); err != context.Canceled {
		t.Fatalf("RunMemory: err = %v, want context.Canceled", err)
	}
	dcfg.Context = ctx
	if _, err := xstream.RunDisk(src, xstream.NewPageRank(50), dcfg); err != context.Canceled {
		t.Fatalf("RunDisk: err = %v, want context.Canceled", err)
	}
}

// TestRunManyReplication: the shared-pass path has its own scatter sink
// (core.jobRun), so mirrors must be proven there too — a replicated
// RunMany job must mirror, sync, and agree bit-for-bit with its solo Run
// under the same replicating assignment (min-lattice algorithm).
func TestRunManyReplication(t *testing.T) {
	src := xstreamtest.RMAT(10, 71)
	repPart := func() xstream.Partitioner {
		return xstream.NewReplicatingPartitioner(xstream.New2PSVolumePartitioner(), xstream.ReplicationConfig{})
	}
	for _, c := range []runManyCase{
		{"mem/2psv+rep", true, repPart, false},
		{"disk/2psv+rep", false, repPart, false},
	} {
		t.Run(c.name, func(t *testing.T) {
			const root = 3
			want := xstream.BFSLevels(soloVertices(t, c, src, xstream.NewBFS(root)))
			results, _ := runManySet(t, c, src, xstream.ProgramSet{
				xstream.NewJob(xstream.NewBFS(root)),
				xstream.NewJob(xstream.NewBFS(root)),
			})
			for i, r := range results {
				s := r.Stats
				if s.MirroredVertices == 0 || s.MirrorSyncUpdates == 0 {
					t.Fatalf("job %d: no mirroring in shared pass: %d vertices, %d syncs",
						i, s.MirroredVertices, s.MirrorSyncUpdates)
				}
				got := xstream.BFSLevels(r.Vertices.([]xstream.BFSState))
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("job %d vertex %d: level %d, want %d", i, v, got[v], want[v])
					}
				}
			}
		})
	}
}
